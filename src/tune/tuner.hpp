// Auto-tuning harness (Section IV-C): the TVM-substitute search loop.
//
// Four searchers over the Table III space:
//  * exhaustive        — evaluate everything (the "hours or even days" mode);
//  * model-pruned      — rank by the Eqn 13 analytic model, evaluate only
//                        the top slice (the paper's pruning contribution);
//  * simulated annealing — AutoTVM's refinement strategy;
//  * GBT-guided        — AutoTVM's XGBoost loop: measure a batch, fit the
//                        surrogate, pick the next batch by predicted cost.
//
// The cost function is injected: benches pass either the analytic pricer
// (what the paper uses to prune) or a host wall-clock measurement.
#pragma once

#include <functional>
#include <vector>

#include "hw/hardware_model.hpp"
#include "tune/gbt.hpp"
#include "tune/search_space.hpp"

namespace autogemm::tune {

/// Cost of running one candidate (lower is better; cycles or seconds).
using CostFn = std::function<double(const Candidate&)>;

struct TuneResult {
  Candidate best;
  double best_cost = 0;
  long evaluations = 0;  ///< cost-function calls spent
};

/// Analytic cost of a candidate for problem (m, n, k) on a chip model —
/// the Eqn 13 composition the paper uses to prune TVM's space.
double model_cost(const Candidate& c, long m, long n, long k,
                  const hw::HardwareModel& hw);

/// Cross-backend analytic cost in *seconds*: model_cost evaluated on the
/// candidate's own backend's pricing chip (NEON -> Graviton2, simulated
/// SVE -> A64FX), divided by that chip's clock. Cycles from different
/// chips are incommensurable — the SVE chip trades clock for width — so
/// seconds is the unit in which a backend-axis search space (see
/// enumerate_space's include_backends) can be ranked by one CostFn and
/// per-shape NEON-vs-SVE winners emerge.
double model_cost_seconds(const Candidate& c, long m, long n, long k);

TuneResult tune_exhaustive(const std::vector<Candidate>& space, CostFn cost);

/// Ranks by `model`, evaluates only the best `keep_fraction` (at least
/// `min_keep` candidates) with `cost`.
TuneResult tune_model_pruned(const std::vector<Candidate>& space,
                             CostFn model, CostFn cost,
                             double keep_fraction = 0.05, int min_keep = 8);

struct AnnealParams {
  int iterations = 200;
  double t_start = 2.0;   ///< initial temperature (relative cost units)
  double t_end = 0.01;
  unsigned seed = 42;
};
TuneResult tune_annealing(const std::vector<Candidate>& space, CostFn cost,
                          const AnnealParams& params = {});

struct GbtSearchParams {
  int batches = 6;
  int batch_size = 12;
  double explore_fraction = 0.25;  ///< random picks mixed into each batch
  unsigned seed = 7;
  GbtParams model;
};
TuneResult tune_gbt(const std::vector<Candidate>& space, CostFn cost,
                    const GbtSearchParams& params = {});

}  // namespace autogemm::tune
