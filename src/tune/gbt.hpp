// Gradient-boosted regression trees — the XGBoost substitute.
//
// AutoTVM fits an XGBoost cost model over measured configurations and uses
// it to rank unexplored candidates. This is a from-scratch reimplementation
// of the same idea: depth-limited CART regression trees boosted on the
// squared-error gradient (which for L2 loss is just fitting residuals),
// with shrinkage. Features are the fixed-size candidate vectors of
// tune::features().
#pragma once

#include <array>
#include <cstddef>
#include <vector>

namespace autogemm::tune {

inline constexpr std::size_t kFeatureCount = 9;
using FeatureVec = std::array<double, kFeatureCount>;

struct GbtParams {
  int rounds = 50;        ///< boosting rounds (trees)
  int max_depth = 3;      ///< per-tree depth
  double shrinkage = 0.3; ///< learning rate
  int min_samples = 4;    ///< minimum samples to split a node
};

class GbtModel {
 public:
  explicit GbtModel(GbtParams params = {}) : params_(params) {}

  /// Fits targets (e.g. measured cycles) to features. Re-fitting replaces
  /// the previous ensemble.
  void fit(const std::vector<FeatureVec>& x, const std::vector<double>& y);

  double predict(const FeatureVec& x) const;

  /// Mean squared error on a dataset (training diagnostics).
  double mse(const std::vector<FeatureVec>& x,
             const std::vector<double>& y) const;

  bool trained() const { return !trees_.empty(); }

 private:
  struct Node {
    int feature = -1;      // -1 = leaf
    double threshold = 0;
    double value = 0;      // leaf prediction
    int left = -1, right = -1;
  };
  struct Tree {
    std::vector<Node> nodes;
    double eval(const FeatureVec& x) const;
  };

  Tree build_tree(const std::vector<FeatureVec>& x,
                  const std::vector<double>& residual,
                  std::vector<int>& index, int begin, int end, int depth);

  GbtParams params_;
  double base_ = 0;
  std::vector<Tree> trees_;
};

}  // namespace autogemm::tune
