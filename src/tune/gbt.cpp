#include "tune/gbt.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace autogemm::tune {
namespace {

double mean(const std::vector<double>& y, const std::vector<int>& index,
            int begin, int end) {
  double sum = 0;
  for (int i = begin; i < end; ++i) sum += y[index[i]];
  return sum / std::max(1, end - begin);
}

}  // namespace

double GbtModel::Tree::eval(const FeatureVec& x) const {
  int node = 0;
  while (nodes[node].feature >= 0) {
    node = x[nodes[node].feature] <= nodes[node].threshold
               ? nodes[node].left
               : nodes[node].right;
  }
  return nodes[node].value;
}

GbtModel::Tree GbtModel::build_tree(const std::vector<FeatureVec>& x,
                                    const std::vector<double>& residual,
                                    std::vector<int>& index, int begin,
                                    int end, int depth) {
  Tree tree;
  // Recursive lambda via explicit stack-free recursion helper.
  struct Builder {
    const std::vector<FeatureVec>& x;
    const std::vector<double>& r;
    std::vector<int>& index;
    const GbtParams& params;
    Tree& tree;

    int build(int begin, int end, int depth) {
      const int node_id = static_cast<int>(tree.nodes.size());
      tree.nodes.push_back({});
      const double node_mean = mean(r, index, begin, end);
      tree.nodes[node_id].value = node_mean;
      if (depth >= params.max_depth || end - begin < params.min_samples)
        return node_id;

      // Greedy best split: minimize weighted variance over all features
      // and midpoints between sorted unique values.
      double best_gain = 1e-12;
      int best_feature = -1;
      double best_threshold = 0;
      double parent_sse = 0;
      for (int i = begin; i < end; ++i)
        parent_sse += (r[index[i]] - node_mean) * (r[index[i]] - node_mean);

      for (std::size_t f = 0; f < kFeatureCount; ++f) {
        std::sort(index.begin() + begin, index.begin() + end,
                  [&](int a, int b) { return x[a][f] < x[b][f]; });
        // Prefix sums over the sorted order.
        double left_sum = 0, left_sq = 0;
        double total_sum = 0, total_sq = 0;
        for (int i = begin; i < end; ++i) {
          total_sum += r[index[i]];
          total_sq += r[index[i]] * r[index[i]];
        }
        for (int i = begin; i < end - 1; ++i) {
          const double v = r[index[i]];
          left_sum += v;
          left_sq += v * v;
          if (x[index[i]][f] == x[index[i + 1]][f]) continue;
          const int nl = i - begin + 1;
          const int nr = end - i - 1;
          const double right_sum = total_sum - left_sum;
          const double right_sq = total_sq - left_sq;
          const double sse_l = left_sq - left_sum * left_sum / nl;
          const double sse_r = right_sq - right_sum * right_sum / nr;
          const double gain = parent_sse - (sse_l + sse_r);
          if (gain > best_gain) {
            best_gain = gain;
            best_feature = static_cast<int>(f);
            best_threshold = 0.5 * (x[index[i]][f] + x[index[i + 1]][f]);
          }
        }
      }
      if (best_feature < 0) return node_id;

      // Partition on the chosen split and recurse.
      std::sort(index.begin() + begin, index.begin() + end, [&](int a, int b) {
        return x[a][best_feature] < x[b][best_feature];
      });
      int mid = begin;
      while (mid < end && x[index[mid]][best_feature] <= best_threshold) ++mid;
      if (mid == begin || mid == end) return node_id;

      tree.nodes[node_id].feature = best_feature;
      tree.nodes[node_id].threshold = best_threshold;
      const int left = build(begin, mid, depth + 1);
      tree.nodes[node_id].left = left;
      const int right = build(mid, end, depth + 1);
      tree.nodes[node_id].right = right;
      return node_id;
    }
  };
  Builder builder{x, residual, index, params_, tree};
  builder.build(begin, end, depth);
  return tree;
}

void GbtModel::fit(const std::vector<FeatureVec>& x,
                   const std::vector<double>& y) {
  if (x.size() != y.size() || x.empty())
    throw std::invalid_argument("GbtModel::fit: bad dataset");
  trees_.clear();
  base_ = std::accumulate(y.begin(), y.end(), 0.0) / y.size();

  std::vector<double> pred(y.size(), base_);
  std::vector<double> residual(y.size());
  std::vector<int> index(y.size());
  for (int round = 0; round < params_.rounds; ++round) {
    for (std::size_t i = 0; i < y.size(); ++i) residual[i] = y[i] - pred[i];
    std::iota(index.begin(), index.end(), 0);
    Tree tree = build_tree(x, residual, index, 0,
                           static_cast<int>(index.size()), 0);
    for (std::size_t i = 0; i < y.size(); ++i)
      pred[i] += params_.shrinkage * tree.eval(x[i]);
    trees_.push_back(std::move(tree));
  }
}

double GbtModel::predict(const FeatureVec& x) const {
  double out = base_;
  for (const auto& tree : trees_) out += params_.shrinkage * tree.eval(x);
  return out;
}

double GbtModel::mse(const std::vector<FeatureVec>& x,
                     const std::vector<double>& y) const {
  double sum = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = predict(x[i]) - y[i];
    sum += d * d;
  }
  return sum / std::max<std::size_t>(1, x.size());
}

}  // namespace autogemm::tune
