// Micro-tiling strategies for a cache-resident sub-matrix C(mc, nc)
// (Section IV-A, Algorithm 1, Fig 5).
//
// Three strategies are implemented:
//  * OpenBLAS-style: one fixed register tile, edges padded;
//  * LIBXSMM-style: one fixed main tile plus remainder tiles on the right
//    and bottom edges (no padding, but the edge tiles can have very low
//    arithmetic intensity);
//  * DMT (the paper's contribution): a dynamic-programming split of the
//    sub-matrix into four parts, each tiled uniformly with the tile size
//    that minimizes the projected runtime of Section III-B's model.
#pragma once

#include <vector>

#include "codegen/tile_sizes.hpp"
#include "hw/hardware_model.hpp"
#include "model/kernel_model.hpp"

namespace autogemm::tiling {

/// One placed micro-tile inside the sub-matrix.
struct MicroTile {
  int row = 0;
  int col = 0;
  int mr = 0;  ///< nominal tile height (kernel shape)
  int nr = 0;  ///< nominal tile width
  /// Rows/cols of real data covered (== mr/nr except on padded edges).
  int rows_used = 0;
  int cols_used = 0;
  bool padded() const { return rows_used < mr || cols_used < nr; }
};

struct TilingResult {
  std::vector<MicroTile> tiles;
  double projected_cycles = 0;  ///< sum of model::kernel_cost over tiles
  int padded_tiles = 0;
  int low_ai_tiles = 0;  ///< tiles with AI_max below hw.sigma_ai

  /// DMT split parameters (Algorithm 1's outputs); meaningful only for DMT.
  int n_front = 0, m_front_up = 0, m_back_up = 0;
};

/// OpenBLAS strategy with the library's classic 5x(4*lanes) main tile.
TilingResult tile_openblas(int mc, int nc, int kc, const hw::HardwareModel& hw,
                           const model::KernelModelOptions& opts = {});

/// LIBXSMM strategy: fixed main tile + remainder edge tiles.
TilingResult tile_libxsmm(int mc, int nc, int kc, const hw::HardwareModel& hw,
                          const model::KernelModelOptions& opts = {});

/// Algorithm 1 (Dynamic Micro-Tiling). The published algorithm is a cubic
/// brute force over (n_front, m_front_up, m_back_up); because the two row
/// splits are independent given n_front, this implementation factors the
/// search to O(nc * mc) with identical optima (verified against the brute
/// force in tests).
TilingResult tile_dmt(int mc, int nc, int kc, const hw::HardwareModel& hw,
                      const model::KernelModelOptions& opts = {});

/// Literal Algorithm 1 (three nested loops); exposed for the equivalence
/// tests and for small illustrative cases like Fig 5's 26x36.
TilingResult tile_dmt_bruteforce(int mc, int nc, int kc,
                                 const hw::HardwareModel& hw,
                                 const model::KernelModelOptions& opts = {});

/// Cost of covering an m x n part with one uniform tile size: Algorithm
/// 1's T(m, n) = min over Table II tiles of ceil(m/mr)*ceil(n/nr)*T_r.
/// Returns the winning tile through `best` when non-null.
double part_cost(int m, int n, int kc, const hw::HardwareModel& hw,
                 const model::KernelModelOptions& opts,
                 codegen::TileSize* best = nullptr);

}  // namespace autogemm::tiling
