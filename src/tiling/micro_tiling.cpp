#include "tiling/micro_tiling.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace autogemm::tiling {
namespace {

// Places a uniform grid of (mr x nr) tiles over an m x n part anchored at
// (row0, col0), clipping coverage at the part bounds (clipped tiles are the
// padded corner cases of Fig 5-(a)).
void place_grid(int row0, int col0, int m, int n, const codegen::TileSize& t,
                std::vector<MicroTile>& out) {
  if (m <= 0 || n <= 0 || t.mr <= 0 || t.nr <= 0) return;
  for (int r = 0; r < m; r += t.mr) {
    for (int c = 0; c < n; c += t.nr) {
      MicroTile tile;
      tile.row = row0 + r;
      tile.col = col0 + c;
      tile.mr = t.mr;
      tile.nr = t.nr;
      tile.rows_used = std::min(t.mr, m - r);
      tile.cols_used = std::min(t.nr, n - c);
      out.push_back(tile);
    }
  }
}

void finalize(TilingResult& result, int kc, const hw::HardwareModel& hw,
              const model::KernelModelOptions& opts) {
  result.projected_cycles = 0;
  result.padded_tiles = 0;
  result.low_ai_tiles = 0;
  for (const auto& t : result.tiles) {
    const codegen::TileSize shape{t.mr, t.nr};
    result.projected_cycles += model::kernel_cost(shape, kc, hw, opts).total();
    if (t.padded()) ++result.padded_tiles;
    if (codegen::ai_max(t.mr, t.nr) < hw.sigma_ai) ++result.low_ai_tiles;
  }
}

// Main tile used by the static strategies: the classic 5 x (4*lanes)
// OpenBLAS Armv8 kernel shape (5x16 for NEON).
codegen::TileSize static_main_tile(const hw::HardwareModel& hw) {
  return {5, 4 * hw.lanes};
}

// Rounds n up to a lane multiple (edge kernels compute in whole vectors and
// mask the store; their cost is that of the rounded shape).
int round_lanes(int n, int lanes) { return (n + lanes - 1) / lanes * lanes; }

// Candidate tiles with their per-invocation model cost, computed once per
// tiling query (kernel_cost is independent of the part shape).
struct Candidates {
  std::vector<codegen::TileSize> tiles;
  std::vector<double> cost;

  Candidates(int kc, const hw::HardwareModel& hw,
             const model::KernelModelOptions& opts) {
    tiles = codegen::enumerate_feasible_tiles(hw.lanes, hw.vector_registers);
    cost.reserve(tiles.size());
    for (const auto& t : tiles)
      cost.push_back(model::kernel_cost(t, kc, hw, opts).total());
  }

  // Algorithm 1's T(m, n): best uniform covering cost (ceil grids; padded
  // edge tiles pay the full tile cost, which is what steers the DP toward
  // exact fits).
  double part(int m, int n, codegen::TileSize* best_tile = nullptr) const {
    if (m <= 0 || n <= 0) {
      if (best_tile) *best_tile = {0, 0};
      return 0.0;
    }
    double q = std::numeric_limits<double>::infinity();
    codegen::TileSize argmin{0, 0};
    for (std::size_t i = 0; i < tiles.size(); ++i) {
      const auto& t = tiles[i];
      const double ntiles = static_cast<double>((m + t.mr - 1) / t.mr) *
                            ((n + t.nr - 1) / t.nr);
      const double c = ntiles * cost[i];
      if (c < q) {
        q = c;
        argmin = t;
      }
    }
    if (best_tile) *best_tile = argmin;
    return q;
  }
};

// Shared materialization once the three split parameters are chosen.
TilingResult materialize_dmt(int mc, int nc, int kc,
                             const hw::HardwareModel& hw,
                             const model::KernelModelOptions& opts,
                             const Candidates& cand, int n_front,
                             int m_front_up, int m_back_up) {
  TilingResult result;
  result.n_front = n_front;
  result.m_front_up = m_front_up;
  result.m_back_up = m_back_up;
  const int n_back = nc - n_front;

  codegen::TileSize t;
  cand.part(m_front_up, n_front, &t);
  place_grid(0, 0, m_front_up, n_front, t, result.tiles);
  cand.part(mc - m_front_up, n_front, &t);
  place_grid(m_front_up, 0, mc - m_front_up, n_front, t, result.tiles);
  cand.part(m_back_up, n_back, &t);
  place_grid(0, n_front, m_back_up, n_back, t, result.tiles);
  cand.part(mc - m_back_up, n_back, &t);
  place_grid(m_back_up, n_front, mc - m_back_up, n_back, t, result.tiles);

  finalize(result, kc, hw, opts);
  return result;
}

}  // namespace

TilingResult tile_openblas(int mc, int nc, int kc, const hw::HardwareModel& hw,
                           const model::KernelModelOptions& opts) {
  TilingResult result;
  place_grid(0, 0, mc, nc, static_main_tile(hw), result.tiles);
  finalize(result, kc, hw, opts);
  return result;
}

TilingResult tile_libxsmm(int mc, int nc, int kc, const hw::HardwareModel& hw,
                          const model::KernelModelOptions& opts) {
  const codegen::TileSize main = static_main_tile(hw);
  const int m_main = mc / main.mr * main.mr;
  const int n_main = nc / main.nr * main.nr;
  const int m_rem = mc - m_main;
  const int n_rem = nc - n_main;

  TilingResult result;
  place_grid(0, 0, m_main, n_main, main, result.tiles);
  if (n_rem > 0)  // right edge strip: full-height rows, narrow tiles
    place_grid(0, n_main, m_main, n_rem,
               {main.mr, round_lanes(n_rem, hw.lanes)}, result.tiles);
  if (m_rem > 0)  // bottom edge strip: short tiles, full-width columns
    place_grid(m_main, 0, m_rem, n_main, {m_rem, main.nr}, result.tiles);
  if (m_rem > 0 && n_rem > 0)  // corner
    place_grid(m_main, n_main, m_rem, n_rem,
               {m_rem, round_lanes(n_rem, hw.lanes)}, result.tiles);
  finalize(result, kc, hw, opts);
  return result;
}

double part_cost(int m, int n, int kc, const hw::HardwareModel& hw,
                 const model::KernelModelOptions& opts,
                 codegen::TileSize* best) {
  return Candidates(kc, hw, opts).part(m, n, best);
}

TilingResult tile_dmt(int mc, int nc, int kc, const hw::HardwareModel& hw,
                      const model::KernelModelOptions& opts) {
  if (mc <= 0 || nc <= 0) throw std::invalid_argument("tile_dmt: empty block");
  const Candidates cand(kc, hw, opts);

  double best = std::numeric_limits<double>::infinity();
  int best_nf = nc, best_mfu = mc, best_mbu = mc;
  std::vector<double> cost_front(mc + 1), cost_back(mc + 1);
  for (int n_front = 0; n_front <= nc; ++n_front) {
    const int n_back = nc - n_front;
    for (int m = 0; m <= mc; ++m) {
      cost_front[m] = cand.part(m, n_front);
      cost_back[m] = cand.part(m, n_back);
    }
    // Given n_front, the front and back row splits are independent, so the
    // cubic search of Algorithm 1 factors into two linear scans.
    double front_best = std::numeric_limits<double>::infinity();
    int front_arg = 0;
    double back_best = std::numeric_limits<double>::infinity();
    int back_arg = 0;
    for (int m_up = 0; m_up <= mc; ++m_up) {
      const double f = cost_front[m_up] + cost_front[mc - m_up];
      if (f < front_best) {
        front_best = f;
        front_arg = m_up;
      }
      const double b = cost_back[m_up] + cost_back[mc - m_up];
      if (b < back_best) {
        back_best = b;
        back_arg = m_up;
      }
    }
    const double total = front_best + back_best;
    if (total < best) {
      best = total;
      best_nf = n_front;
      best_mfu = front_arg;
      best_mbu = back_arg;
    }
  }
  return materialize_dmt(mc, nc, kc, hw, opts, cand, best_nf, best_mfu,
                         best_mbu);
}

TilingResult tile_dmt_bruteforce(int mc, int nc, int kc,
                                 const hw::HardwareModel& hw,
                                 const model::KernelModelOptions& opts) {
  if (mc <= 0 || nc <= 0)
    throw std::invalid_argument("tile_dmt_bruteforce: empty block");
  const Candidates cand(kc, hw, opts);

  // Memoize T(m, n) for the n values visited (two per n_front).
  std::vector<double> cost_front(mc + 1), cost_back(mc + 1);
  double best = std::numeric_limits<double>::infinity();
  int best_nf = nc, best_mfu = mc, best_mbu = mc;
  for (int n_front = 0; n_front <= nc; ++n_front) {
    const int n_back = nc - n_front;
    for (int m = 0; m <= mc; ++m) {
      cost_front[m] = cand.part(m, n_front);
      cost_back[m] = cand.part(m, n_back);
    }
    for (int m_front_up = 0; m_front_up <= mc; ++m_front_up) {
      for (int m_back_up = 0; m_back_up <= mc; ++m_back_up) {
        const double p = cost_front[m_front_up] +
                         cost_front[mc - m_front_up] + cost_back[m_back_up] +
                         cost_back[mc - m_back_up];
        if (p < best) {
          best = p;
          best_nf = n_front;
          best_mfu = m_front_up;
          best_mbu = m_back_up;
        }
      }
    }
  }
  return materialize_dmt(mc, nc, kc, hw, opts, cand, best_nf, best_mfu,
                         best_mbu);
}

}  // namespace autogemm::tiling
