// BackendId: the dependency-free identity of a kernel backend.
//
// Deliberately a leaf header (no includes beyond <cstdint>/<string_view>):
// it is threaded through GemmConfig, plan-cache keys, tuning records and
// the tune:: search space, all of which sit at different layers. The full
// KernelBackend interface (backend/backend.hpp) pulls in codegen/kernels/hw
// and lives strictly below core; anything that only needs to *name* a
// backend includes this header instead.
#pragma once

#include <cstdint>
#include <string_view>

namespace autogemm::backend {

/// Identity of a registered kernel backend. Values are stable: they appear
/// in tuning-record files and metrics labels. kAuto is a request, never a
/// resolved identity — BackendRegistry::resolve() maps it to a concrete
/// backend (env override first, then deterministic priority order).
enum class BackendId : std::int8_t {
  kAuto = -1,   ///< "pick for me" (ContextOptions default)
  kNeon = 0,    ///< fixed-width NEON A64 tier (host-executable)
  kSveSim = 1,  ///< SVE predicated VL-agnostic tier (simulator-only)
};

/// Stable lowercase name ("neon", "sve_sim", "auto") — the spelling used in
/// tuning-record files, AUTOGEMM_BACKEND, and metrics labels.
constexpr std::string_view backend_name(BackendId id) {
  switch (id) {
    case BackendId::kAuto: return "auto";
    case BackendId::kNeon: return "neon";
    case BackendId::kSveSim: return "sve_sim";
  }
  return "unknown";
}

/// Inverse of backend_name(). Returns kAuto for "auto" or any unrecognized
/// spelling (callers that must reject bad input compare the round-trip).
constexpr BackendId parse_backend(std::string_view name) {
  if (name == backend_name(BackendId::kNeon)) return BackendId::kNeon;
  if (name == backend_name(BackendId::kSveSim)) return BackendId::kSveSim;
  return BackendId::kAuto;
}

}  // namespace autogemm::backend
