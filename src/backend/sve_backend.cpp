// SveSimBackend: the SVE predicated, VL-agnostic tier. Simulator-only —
// find_microkernel always returns nullptr (this x86 host cannot execute
// SVE); generated programs run on sim::Interpreter for correctness and on
// the pipeline simulator under the A64FX model for pricing.
//
// Generation width is adaptive per tile: the narrowest power-of-two width
// in [vl_min, vl_default] whose group count fits the p1..p7 predicate
// budget. Narrow/irregular tiles (e.g. 5x10) generate at 4 lanes and stay
// executable at every VL from 4 to the simulator's 16; the wide preferred
// shapes (nr up to 80) need 16-lane groups and thus run at VL 16 only —
// exactly the width the A64FX pricing model simulates.
#include <stdexcept>
#include <string>

#include "backend/builtin.hpp"

namespace autogemm::backend {
namespace {

class SveSimBackend final : public KernelBackend {
 public:
  SveSimBackend() {
    caps_.id = BackendId::kSveSim;
    caps_.vl_min = 4;
    caps_.vl_default = 16;  // SVE-512 fp32, the A64FX width
    caps_.vl_agnostic = true;
    caps_.host_executable = false;
    caps_.max_mr = 10;   // GP budget of the predicated kernel
    caps_.max_nr = 112;  // 7 groups x 16 lanes
    caps_.pricing_chip = hw::Chip::kA64FX;
    caps_.priority = 50;
  }

  const BackendCaps& caps() const override { return caps_; }

  /// Narrowest feasible generation width for the tile, or 0.
  int generation_width(int mr, int nr) const {
    for (int w = caps_.vl_min; w <= caps_.vl_default; w *= 2)
      if (codegen::sve_tile_feasible(mr, nr, w)) return w;
    return 0;
  }

  bool tile_feasible(int mr, int nr) const override {
    return generation_width(mr, nr) != 0;
  }

  std::vector<codegen::TileSize> preferred_tiles() const override {
    return codegen::preferred_tiles(caps_.vl_default);
  }

  kernels::MicroKernelFn find_microkernel(int, int) const override {
    return nullptr;  // simulator-only: no compiled host kernels
  }

  codegen::MicroKernel generate(
      int mr, int nr, int kc,
      const codegen::GeneratorOptions& opts) const override {
    const int w = generation_width(mr, nr);
    if (w == 0)
      throw std::invalid_argument("sve_sim: tile " + std::to_string(mr) +
                                  "x" + std::to_string(nr) +
                                  " infeasible at any generation width");
    return codegen::generate_sve_microkernel(mr, nr, kc, w, opts);
  }

  hw::HardwareModel pricing_model() const override {
    return hw::chip_model(caps_.pricing_chip);
  }

 private:
  BackendCaps caps_;
};

}  // namespace

std::unique_ptr<KernelBackend> make_sve_sim_backend() {
  return std::make_unique<SveSimBackend>();
}

}  // namespace autogemm::backend
