// NeonBackend: the fixed-width NEON A64 tier as a registry backend.
//
// This is the refactor-proof port of the pre-registry code path: it
// delegates to exactly the same kernel table (kernels::detail) and the same
// Listing-1 generator at lanes=4, so a Context resolved to kNeon is
// behavior-identical — bitwise-same C — to the code before the registry
// existed.
#include "backend/builtin.hpp"
#include "kernels/dispatch.hpp"

namespace autogemm::backend {
namespace {

class NeonBackend final : public KernelBackend {
 public:
  NeonBackend() {
    caps_.id = BackendId::kNeon;
    caps_.vl_min = 4;
    caps_.vl_default = 4;
    caps_.vl_agnostic = false;
    caps_.host_executable = true;
    caps_.max_mr = 10;   // GP row-pointer budget of Listing 1
    caps_.max_nr = 80;   // widest compiled table shape (4x80)
    caps_.pricing_chip = hw::Chip::kGraviton2;
    caps_.priority = 100;
  }

  const BackendCaps& caps() const override { return caps_; }

  bool tile_feasible(int mr, int nr) const override {
    return codegen::tile_feasible(mr, nr, caps_.vl_min);
  }

  std::vector<codegen::TileSize> preferred_tiles() const override {
    return codegen::preferred_tiles(caps_.vl_min);
  }

  kernels::MicroKernelFn find_microkernel(int mr, int nr) const override {
    return kernels::detail::neon_table_lookup(mr, nr);
  }

  codegen::MicroKernel generate(
      int mr, int nr, int kc,
      const codegen::GeneratorOptions& opts) const override {
    return codegen::generate_microkernel(mr, nr, kc, caps_.vl_min, opts);
  }

  hw::HardwareModel pricing_model() const override {
    return hw::chip_model(caps_.pricing_chip);
  }

 private:
  BackendCaps caps_;
};

}  // namespace

std::unique_ptr<KernelBackend> make_neon_backend() {
  return std::make_unique<NeonBackend>();
}

}  // namespace autogemm::backend
