// Kernel backend registry: one ABI, N backends.
//
// A KernelBackend bundles everything the rest of the library needs to know
// about one ISA tier behind a uniform interface:
//   * capabilities (lane widths, host executability, tile ceilings),
//   * tile feasibility + preferred shapes (per-backend Table II analog),
//   * the compiled host micro-kernel table (find_microkernel),
//   * the code generator entry (generate -> isa::Program IR),
//   * the chip model the tuner prices this backend on (pricing_model).
//
// The process-wide BackendRegistry owns one instance per BackendId with a
// deterministic priority ordering. Context resolves ContextOptions::backend
// through it: an explicit id passes through, kAuto honors AUTOGEMM_BACKEND
// and otherwise picks the highest-priority host-executable backend — which
// keeps the default NEON path bitwise-identical to the pre-registry code.
//
// Host-executable vs simulator-only: a backend whose caps().host_executable
// is true serves compiled C++ kernels via find_microkernel (NEON); a
// simulator-only backend (sve_sim) returns nullptr from find_microkernel
// for every shape — its generated programs execute on sim::Interpreter /
// sim::PipelineSimulator — and host execution under it falls back to the
// portable kernels::run_tile path. DESIGN.md §4 has the layering diagram
// and the "how to add a backend" checklist.
#pragma once

#include <memory>
#include <vector>

#include "backend/backend_id.hpp"
#include "codegen/generator.hpp"
#include "codegen/tile_sizes.hpp"
#include "hw/chip_database.hpp"
#include "kernels/microkernel.hpp"

namespace autogemm::backend {

/// Static capabilities of one backend.
struct BackendCaps {
  BackendId id = BackendId::kNeon;
  /// Generation lane width in fp32 lanes (sigma_lane floor). For the
  /// VL-agnostic tier this is the minimum VL a generated program accepts.
  int vl_min = 4;
  /// Execution VL the simulator / pricing model runs at by default.
  int vl_default = 4;
  /// Generated programs are vector-length-agnostic (predicated SVE tier).
  bool vl_agnostic = false;
  /// Compiled host micro-kernels exist (find_microkernel can return
  /// non-null). false = simulator-only tier.
  bool host_executable = true;
  /// Register-budget ceilings for this backend's tile shapes.
  int max_mr = 10;
  int max_nr = 28;
  /// Chip whose hw model prices this backend under kAuto / tune::.
  hw::Chip pricing_chip = hw::Chip::kGraviton2;
  /// Deterministic registry ordering: higher wins. kAuto resolution picks
  /// the highest-priority host-executable backend.
  int priority = 0;
};

/// The kernel/codegen ABI every backend implements. Implementations are
/// stateless and thread-safe; the registry owns them for process lifetime.
class KernelBackend {
 public:
  virtual ~KernelBackend() = default;

  virtual const BackendCaps& caps() const = 0;

  /// Register feasibility of a (mr, nr) tile under this backend's encoding.
  virtual bool tile_feasible(int mr, int nr) const = 0;

  /// First-choice register tiles at this backend's default width (the
  /// per-backend Table II blue cells); every entry is tile_feasible().
  virtual std::vector<codegen::TileSize> preferred_tiles() const = 0;

  /// Compiled host kernel for the exact tile, or nullptr. Always nullptr
  /// for simulator-only backends; callers fall back to the portable
  /// kernels::run_tile path.
  virtual kernels::MicroKernelFn find_microkernel(int mr, int nr) const = 0;

  /// Generates the micro-kernel IR for the tile. Throws
  /// std::invalid_argument when !tile_feasible(mr, nr).
  virtual codegen::MicroKernel generate(
      int mr, int nr, int kc,
      const codegen::GeneratorOptions& opts = {}) const = 0;

  /// Chip model the tuner and kAuto resolution price this backend on.
  virtual hw::HardwareModel pricing_model() const = 0;
};

/// Process-wide registry. The two built-in backends (neon, sve_sim) are
/// registered on first use; register_backend() admits future tiers (SME
/// fmopa, int8/bf16 widening) without touching dispatch sites.
class BackendRegistry {
 public:
  /// Registers a backend; replaces an existing entry with the same id.
  void register_backend(std::unique_ptr<KernelBackend> b);

  /// Lookup by id; nullptr when unknown (kAuto always returns nullptr —
  /// resolve it first).
  const KernelBackend* find(BackendId id) const;

  /// As find(), but throws std::out_of_range for unknown ids.
  const KernelBackend& get(BackendId id) const;

  /// All backends in deterministic order: priority descending, id
  /// ascending as the tiebreak.
  std::vector<const KernelBackend*> all() const;

  /// Maps a requested id to a concrete one. Explicit ids pass through
  /// (throwing if unregistered). kAuto consults AUTOGEMM_BACKEND (a name
  /// accepted by parse_backend) and otherwise returns the highest-priority
  /// host-executable backend.
  BackendId resolve(BackendId requested) const;

 private:
  std::vector<std::unique_ptr<KernelBackend>> backends_;
};

/// The process-wide registry, with the built-in backends registered.
BackendRegistry& registry();

/// Convenience: registry().get(id).
const KernelBackend& get_backend(BackendId id);

/// Convenience: registry().resolve(requested).
BackendId resolve_backend(BackendId requested);

}  // namespace autogemm::backend
