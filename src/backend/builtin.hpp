// Factories for the built-in backends (internal to autogemm::backend; the
// registry registers them on first use).
#pragma once

#include <memory>

#include "backend/backend.hpp"

namespace autogemm::backend {

std::unique_ptr<KernelBackend> make_neon_backend();
std::unique_ptr<KernelBackend> make_sve_sim_backend();

}  // namespace autogemm::backend
