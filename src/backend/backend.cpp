#include "backend/backend.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "backend/builtin.hpp"

namespace autogemm::backend {

void BackendRegistry::register_backend(std::unique_ptr<KernelBackend> b) {
  if (!b) throw std::invalid_argument("registry: null backend");
  const BackendId id = b->caps().id;
  if (id == BackendId::kAuto)
    throw std::invalid_argument("registry: kAuto is not a registrable id");
  for (auto& existing : backends_) {
    if (existing->caps().id == id) {
      existing = std::move(b);
      return;
    }
  }
  backends_.push_back(std::move(b));
}

const KernelBackend* BackendRegistry::find(BackendId id) const {
  for (const auto& b : backends_)
    if (b->caps().id == id) return b.get();
  return nullptr;
}

const KernelBackend& BackendRegistry::get(BackendId id) const {
  const KernelBackend* b = find(id);
  if (!b)
    throw std::out_of_range("registry: no backend named '" +
                            std::string(backend_name(id)) + "'");
  return *b;
}

std::vector<const KernelBackend*> BackendRegistry::all() const {
  std::vector<const KernelBackend*> out;
  out.reserve(backends_.size());
  for (const auto& b : backends_) out.push_back(b.get());
  std::sort(out.begin(), out.end(),
            [](const KernelBackend* a, const KernelBackend* b) {
              if (a->caps().priority != b->caps().priority)
                return a->caps().priority > b->caps().priority;
              return a->caps().id < b->caps().id;
            });
  return out;
}

BackendId BackendRegistry::resolve(BackendId requested) const {
  if (requested != BackendId::kAuto) {
    (void)get(requested);  // throws for unregistered ids
    return requested;
  }
  if (const char* env = std::getenv("AUTOGEMM_BACKEND")) {
    const BackendId id = parse_backend(env);
    if (id != BackendId::kAuto && find(id)) return id;
  }
  const auto ordered = all();
  if (ordered.empty()) throw std::out_of_range("registry: no backends");
  // Highest-priority host-executable backend: keeps the default path on
  // compiled kernels (and bitwise-identical to the pre-registry library).
  for (const KernelBackend* b : ordered)
    if (b->caps().host_executable) return b->caps().id;
  return ordered.front()->caps().id;
}

BackendRegistry& registry() {
  // Built-ins registered once, before main() can race (magic static).
  // Registration after startup is the caller's concurrency problem; reads
  // after that point are lock-free over an effectively immutable set.
  static BackendRegistry* reg = [] {
    auto* r = new BackendRegistry();
    r->register_backend(make_neon_backend());
    r->register_backend(make_sve_sim_backend());
    return r;
  }();
  return *reg;
}

const KernelBackend& get_backend(BackendId id) { return registry().get(id); }

BackendId resolve_backend(BackendId requested) {
  return registry().resolve(requested);
}

}  // namespace autogemm::backend
