#include "sim/cache_sim.hpp"

#include <algorithm>

namespace autogemm::sim {

bool CacheSim::Level::touch(std::uint64_t line) {
  auto it = map.find(line);
  if (it == map.end()) return false;
  order.splice(order.begin(), order, it->second);
  return true;
}

void CacheSim::Level::insert(std::uint64_t line) {
  if (touch(line)) return;
  order.push_front(line);
  map[line] = order.begin();
  if (map.size() > capacity_lines) {
    map.erase(order.back());
    order.pop_back();
  }
}

CacheSim::CacheSim(const hw::HardwareModel& hw)
    : line_bytes_(hw.caches.empty() ? 64 : hw.caches.front().line_bytes) {
  lru_.reserve(hw.caches.size());
  for (const auto& level : hw.caches) {
    Level l;
    l.capacity_lines = std::max<std::size_t>(
        1, static_cast<std::size_t>(level.size_bytes / level.line_bytes));
    lru_.push_back(std::move(l));
  }
}

int CacheSim::access(std::uint64_t addr) {
  const std::uint64_t line = addr / line_bytes_;
  int hit_level = static_cast<int>(lru_.size());  // DRAM by default
  for (std::size_t i = 0; i < lru_.size(); ++i) {
    if (lru_[i].touch(line)) {
      hit_level = static_cast<int>(i);
      break;
    }
  }
  // Inclusive fill: install in every level above (and at) the hit.
  for (int i = 0; i < hit_level && i < static_cast<int>(lru_.size()); ++i)
    lru_[i].insert(line);
  return hit_level;
}

void CacheSim::prefetch(std::uint64_t addr) { (void)access(addr); }

void CacheSim::warm(std::uint64_t base, std::uint64_t bytes) {
  const std::uint64_t first = base / line_bytes_;
  const std::uint64_t last = (base + bytes + line_bytes_ - 1) / line_bytes_;
  for (std::uint64_t line = first; line < last; ++line)
    (void)access(line * line_bytes_);
}

}  // namespace autogemm::sim
