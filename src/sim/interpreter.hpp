// Functional A64 interpreter.
//
// Executes a generated isa::Program against real host memory, giving the
// reproduction a way to check that the *semantics* of the generated
// assembly are correct (the paper verifies its generated kernels against
// other BLAS libraries; we verify against common::reference_gemm). The
// interpreter is strictly sequential — one instruction at a time — so it is
// also the ground truth that the fusion/rotation passes preserve meaning.
//
// It is additionally the execution vehicle for Context's first-use kernel
// probes (core/context.hpp), so it must never take the process down: the
// hardened entry point try_run() turns every fault — unbound label, bad
// lane count, undecodable instruction, step-budget overrun from a runaway
// generated loop — into an autogemm::Status the caller can quarantine on.
#pragma once

#include <cstdint>

#include "common/status.hpp"
#include "isa/program.hpp"

namespace autogemm::sim {

/// Pointer/stride bindings for the kernel ABI (isa::Abi): x0..x5.
struct KernelArgs {
  const float* a = nullptr;
  const float* b = nullptr;
  float* c = nullptr;
  long lda = 0;  ///< element strides; the kernel scales to bytes itself
  long ldb = 0;
  long ldc = 0;
};

class Interpreter {
 public:
  /// `max_steps` bounds dynamic instructions (the watchdog that turns a
  /// buggy generated loop that never terminates into a Status).
  explicit Interpreter(long max_steps = 100'000'000)
      : max_steps_(max_steps) {}

  /// Execution vector length in fp32 lanes for vl_agnostic (SVE) programs.
  /// 0 (default) executes at the program's generation width. A predicated
  /// program must run at a VL at or above its generation width; fixed-width
  /// NEON programs ignore this and always run at prog.lanes(). This is the
  /// knob the VL-agnosticism crosscheck turns: the same program, executed
  /// at two different VLs, must produce identical C.
  void set_vector_length(int vl) { vector_length_ = vl; }
  int vector_length() const { return vector_length_; }

  /// Runs the program to completion. Never throws on program faults:
  /// returns kInvalidArgument for an unsupported lane count or a VL below
  /// a predicated program's generation width, kInternal for an unbound
  /// label, an undecodable instruction, or a predicated op with an invalid
  /// predicate index, kDeadlineExceeded when the step watchdog fires.
  Status try_run(const isa::Program& prog, const KernelArgs& args);

  /// Legacy wrapper: as try_run(), but throws std::runtime_error on any
  /// non-OK status.
  void run(const isa::Program& prog, const KernelArgs& args);

  /// Dynamic instructions retired by the last run.
  long steps() const { return steps_; }

 private:
  long max_steps_;
  int vector_length_ = 0;
  long steps_ = 0;
};

}  // namespace autogemm::sim
