#include "sim/interpreter.hpp"

#include <array>
#include <cstring>
#include <stdexcept>
#include <unordered_map>

#include "common/failpoint.hpp"

namespace autogemm::sim {
namespace {

constexpr int kMaxLanes = 16;  // SVE-512 fp32
constexpr int kPredRegs = 16;  // p0..p15

struct State {
  std::array<std::uint64_t, 32> x{};
  std::array<std::array<float, kMaxLanes>, 32> v{};
  std::array<std::array<bool, kMaxLanes>, kPredRegs> p{};
  bool zero_flag = false;
};

bool valid_pred(const isa::Instruction& inst) {
  return inst.pred >= 0 && inst.pred < kPredRegs;
}

std::uint64_t address(const State& s, const isa::Instruction& inst) {
  const std::uint64_t base = s.x[inst.src1.index];
  switch (inst.addr) {
    case isa::AddrMode::kOffset:
      return base + static_cast<std::int64_t>(inst.imm);
    case isa::AddrMode::kPostIndex:
    case isa::AddrMode::kNone:
      return base;
  }
  return base;
}

void post_index(State& s, const isa::Instruction& inst) {
  if (inst.addr == isa::AddrMode::kPostIndex)
    s.x[inst.src1.index] += static_cast<std::int64_t>(inst.imm);
}

}  // namespace

Status Interpreter::try_run(const isa::Program& prog, const KernelArgs& args) {
  // Fixed-width programs always execute at their generation width; a
  // vl_agnostic program may be widened to any VL >= its generation width.
  int lanes = prog.lanes();
  if (prog.vl_agnostic() && vector_length_ != 0) {
    if (vector_length_ < prog.lanes())
      return InvalidArgumentError(
          "interpreter: VL below the program's generation width");
    lanes = vector_length_;
  }
  if (lanes < 1 || lanes > kMaxLanes)
    return InvalidArgumentError("interpreter: unsupported lane count");

  State s;
  s.x[isa::Abi::kA] = reinterpret_cast<std::uintptr_t>(args.a);
  s.x[isa::Abi::kB] = reinterpret_cast<std::uintptr_t>(args.b);
  s.x[isa::Abi::kC] = reinterpret_cast<std::uintptr_t>(args.c);
  s.x[isa::Abi::kLda] = static_cast<std::uint64_t>(args.lda);
  s.x[isa::Abi::kLdb] = static_cast<std::uint64_t>(args.ldb);
  s.x[isa::Abi::kLdc] = static_cast<std::uint64_t>(args.ldc);

  // Pre-resolve label ids to instruction indices.
  std::unordered_map<int, int> labels;
  const auto& code = prog.code();
  for (std::size_t i = 0; i < code.size(); ++i)
    if (code[i].op == isa::Op::kLabel) labels[code[i].label] = static_cast<int>(i);

  steps_ = 0;
  int pc = 0;
  const int n = static_cast<int>(code.size());
  while (pc < n) {
    if (++steps_ > max_steps_)
      return DeadlineExceededError(
          "interpreter: step limit exceeded (runaway loop?)");
    const isa::Instruction& inst = code[pc];
    if (failpoint::should_fail("sim.illegal_instruction"))
      return InternalError("interpreter: illegal instruction (injected)");
    switch (inst.op) {
      case isa::Op::kLdrQ: {
        const auto* src = reinterpret_cast<const float*>(address(s, inst));
        std::memcpy(s.v[inst.dst.index].data(), src, lanes * sizeof(float));
        post_index(s, inst);
        break;
      }
      case isa::Op::kStrQ: {
        auto* dst = reinterpret_cast<float*>(address(s, inst));
        std::memcpy(dst, s.v[inst.dst.index].data(), lanes * sizeof(float));
        post_index(s, inst);
        break;
      }
      case isa::Op::kLdrS: {
        const auto* src = reinterpret_cast<const float*>(address(s, inst));
        s.v[inst.dst.index].fill(0.0f);  // ldr s zeroes the upper lanes
        s.v[inst.dst.index][0] = *src;
        post_index(s, inst);
        break;
      }
      case isa::Op::kStrS: {
        auto* dst = reinterpret_cast<float*>(address(s, inst));
        *dst = s.v[inst.dst.index][0];
        post_index(s, inst);
        break;
      }
      case isa::Op::kFmla: {
        const float scalar = s.v[inst.src2.index][inst.lane];
        auto& acc = s.v[inst.dst.index];
        const auto& vec = s.v[inst.src1.index];
        for (int i = 0; i < lanes; ++i) acc[i] += vec[i] * scalar;
        break;
      }
      case isa::Op::kFmlaS:
        s.v[inst.dst.index][0] +=
            s.v[inst.src1.index][0] * s.v[inst.src2.index][0];
        break;
      case isa::Op::kMovi0:
        s.v[inst.dst.index].fill(0.0f);
        break;
      case isa::Op::kPrfm:
        break;  // architectural no-op
      case isa::Op::kMovReg:
        s.x[inst.dst.index] = s.x[inst.src1.index];
        break;
      case isa::Op::kMovImm:
        s.x[inst.dst.index] = static_cast<std::uint64_t>(inst.imm);
        break;
      case isa::Op::kAddReg:
        s.x[inst.dst.index] = s.x[inst.src1.index] + s.x[inst.src2.index];
        break;
      case isa::Op::kAddImm:
        s.x[inst.dst.index] =
            s.x[inst.src1.index] + static_cast<std::int64_t>(inst.imm);
        break;
      case isa::Op::kLslImm:
        s.x[inst.dst.index] = s.x[inst.src1.index] << inst.imm;
        break;
      case isa::Op::kSubsImm:
        s.x[inst.dst.index] =
            s.x[inst.src1.index] - static_cast<std::uint64_t>(inst.imm);
        s.zero_flag = (s.x[inst.dst.index] == 0);
        break;
      case isa::Op::kLabel:
        break;
      case isa::Op::kBne: {
        if (!s.zero_flag) {
          auto it = labels.find(inst.label);
          if (it == labels.end())
            return InternalError("interpreter: branch to unbound label");
          pc = it->second;
        }
        break;
      }
      case isa::Op::kPtrue: {
        auto& pd = s.p[inst.dst.index];
        pd.fill(false);
        for (int i = 0; i < lanes; ++i) pd[i] = true;
        break;
      }
      case isa::Op::kWhilelt: {
        const auto lo = static_cast<std::int64_t>(s.x[inst.src1.index]);
        const auto hi = static_cast<std::int64_t>(s.x[inst.src2.index]);
        auto& pd = s.p[inst.dst.index];
        pd.fill(false);
        for (int i = 0; i < lanes; ++i) pd[i] = lo + i < hi;
        break;
      }
      case isa::Op::kCntW:
        s.x[inst.dst.index] = static_cast<std::uint64_t>(lanes);
        break;
      case isa::Op::kLd1W: {
        if (!valid_pred(inst))
          return InternalError("interpreter: ld1w without governing predicate");
        const auto* src = reinterpret_cast<const float*>(
            s.x[inst.src1.index] +
            static_cast<std::int64_t>(inst.imm) * lanes * sizeof(float));
        const auto& pg = s.p[inst.pred];
        auto& vd = s.v[inst.dst.index];
        for (int i = 0; i < kMaxLanes; ++i)
          vd[i] = (i < lanes && pg[i]) ? src[i] : 0.0f;  // /z: inactive -> 0
        break;
      }
      case isa::Op::kSt1W: {
        if (!valid_pred(inst))
          return InternalError("interpreter: st1w without governing predicate");
        auto* dst = reinterpret_cast<float*>(
            s.x[inst.src1.index] +
            static_cast<std::int64_t>(inst.imm) * lanes * sizeof(float));
        const auto& pg = s.p[inst.pred];
        const auto& vd = s.v[inst.dst.index];
        for (int i = 0; i < lanes; ++i)
          if (pg[i]) dst[i] = vd[i];  // inactive lanes leave memory untouched
        break;
      }
      case isa::Op::kLd1RW: {
        if (!valid_pred(inst))
          return InternalError(
              "interpreter: ld1rw without governing predicate");
        const auto* src = reinterpret_cast<const float*>(address(s, inst));
        const float value = *src;
        const auto& pg = s.p[inst.pred];
        auto& vd = s.v[inst.dst.index];
        for (int i = 0; i < kMaxLanes; ++i)
          vd[i] = (i < lanes && pg[i]) ? value : 0.0f;
        break;
      }
      case isa::Op::kFmlaZ: {
        if (!valid_pred(inst))
          return InternalError("interpreter: fmla.z without governing predicate");
        const auto& pg = s.p[inst.pred];
        auto& acc = s.v[inst.dst.index];
        const auto& zn = s.v[inst.src1.index];
        const auto& zm = s.v[inst.src2.index];
        for (int i = 0; i < lanes; ++i)
          if (pg[i]) acc[i] += zn[i] * zm[i];  // /m: inactive lanes merge
        break;
      }
      default:
        // A corrupted program can carry an out-of-range opcode; refuse it
        // instead of silently skipping (the quarantine probes key on this).
        return InternalError("interpreter: illegal instruction");
    }
    ++pc;
  }
  return Status::OK();
}

void Interpreter::run(const isa::Program& prog, const KernelArgs& args) {
  const Status s = try_run(prog, args);
  if (!s.ok()) throw std::runtime_error(s.to_string());
}

}  // namespace autogemm::sim
