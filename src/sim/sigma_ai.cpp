#include "sim/sigma_ai.hpp"

#include <algorithm>
#include <map>

#include "codegen/generator.hpp"
#include "codegen/tile_sizes.hpp"
#include "sim/pipeline.hpp"

namespace autogemm::sim {

SigmaAiResult measure_sigma_ai(const hw::HardwareModel& hw,
                               double relative_target, int kc) {
  // Best simulated efficiency per distinct AI_max value.
  std::map<double, double> best_at_ai;
  for (const auto& tile :
       codegen::enumerate_feasible_tiles(hw.lanes, hw.vector_registers)) {
    if (tile.mr > 11) continue;  // Listing 1's row-pointer budget
    codegen::GeneratorOptions opts;
    opts.rotate_registers = true;
    opts.memory_bound = codegen::ai_max(tile.mr, tile.nr) < hw.sigma_ai;
    const auto mk =
        codegen::generate_microkernel(tile.mr, tile.nr, kc, hw.lanes, opts);

    SimOptions sopts;
    sopts.lda = codegen::padded_k_a(kc, hw.lanes);
    sopts.ldb = tile.nr;
    sopts.ldc = tile.nr;
    sopts.launch_overhead = 0;
    // Warm operands: the micro-benchmark measures the pipeline, not the
    // memory system.
    sopts.warm_ranges = {
        {sopts.a_base, static_cast<std::uint64_t>(tile.mr) * sopts.lda * 4},
        {sopts.b_base,
         static_cast<std::uint64_t>(codegen::padded_k_b(kc, hw.lanes)) *
             tile.nr * 4},
        {sopts.c_base, static_cast<std::uint64_t>(tile.mr) * tile.nr * 4}};
    const auto stats = simulate_repeated(mk.program, hw, sopts, 4);
    const double ai = codegen::ai_max(tile.mr, tile.nr);
    auto& slot = best_at_ai[ai];
    slot = std::max(slot, stats.efficiency(hw));
  }

  SigmaAiResult result;
  for (const auto& [ai, eff] : best_at_ai)
    result.best_efficiency = std::max(result.best_efficiency, eff);
  // Smallest AI whose best tile sustains the target fraction of peak, with
  // every higher-AI tile also sustaining it (a monotone frontier).
  result.sigma_ai = best_at_ai.empty() ? 0.0 : best_at_ai.rbegin()->first;
  const double bar = relative_target * result.best_efficiency;
  for (auto it = best_at_ai.rbegin(); it != best_at_ai.rend(); ++it) {
    if (it->second < bar) break;
    result.sigma_ai = it->first;
  }
  return result;
}

}  // namespace autogemm::sim
