// sigma_AI micro-benchmarking (Section III-A2).
//
// The paper obtains sigma_AI — the arithmetic-intensity threshold above
// which a micro-kernel can reach peak on a given chip — "by
// micro-benchmarking a target hardware". This is that procedure run
// against the pipeline simulator: generate the rotated kernel for every
// feasible tile, simulate it warm, and report the smallest AI_max whose
// tile sustains at least `relative_target` of the best efficiency any
// tile achieves on that chip.
#pragma once

#include "hw/hardware_model.hpp"

namespace autogemm::sim {

struct SigmaAiResult {
  double sigma_ai = 0;        ///< measured threshold
  double best_efficiency = 0; ///< best tile efficiency observed
};

SigmaAiResult measure_sigma_ai(const hw::HardwareModel& hw,
                               double relative_target = 0.90, int kc = 256);

}  // namespace autogemm::sim
