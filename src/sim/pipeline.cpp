#include "sim/pipeline.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <unordered_map>

#include "common/failpoint.hpp"
#include "obs/trace.hpp"
#include "sim/cache_sim.hpp"

namespace autogemm::sim {
namespace {

// Register ids in the scoreboard: x0..x31 -> 0..31, v0..v31 -> 32..63,
// NZCV flags -> 64, p0..p15 -> 65..80.
constexpr int kVBase = 32;
constexpr int kFlags = 64;
constexpr int kPBase = 65;
constexpr int kRegCount = 81;

int reg_id(isa::Reg r) {
  if (!r.valid()) return -1;
  switch (r.kind) {
    case isa::RegKind::kX: return r.index;
    case isa::RegKind::kV: return kVBase + r.index;
    case isa::RegKind::kP: return kPBase + r.index;
    case isa::RegKind::kNone: return -1;
  }
  return -1;
}

enum class Cls : std::uint8_t { kFma, kLoad, kStore, kInt, kPrfm };

struct DynInst {
  int static_idx = -1;
  Cls cls = Cls::kInt;
  int dst = -1;       // result register (latency = class latency)
  int dst2 = -1;      // post-index base writeback (integer latency)
  std::array<int, 4> src{-1, -1, -1, -1};
  std::uint64_t addr = 0;
  bool has_addr = false;
};

// Phase 1: functional X-register execution unrolling control flow. `lanes`
// is the execution vector length (already resolved against vl_agnostic),
// needed for kCntW's materialized value and `mul vl` address scaling.
Status build_trace(const isa::Program& prog, const SimOptions& opts,
                   int lanes, std::vector<DynInst>& trace) {
  std::array<std::uint64_t, 32> x{};
  bool zero_flag = false;
  x[isa::Abi::kA] = opts.a_base;
  x[isa::Abi::kB] = opts.b_base;
  x[isa::Abi::kC] = opts.c_base;
  x[isa::Abi::kLda] = static_cast<std::uint64_t>(opts.lda);
  x[isa::Abi::kLdb] = static_cast<std::uint64_t>(opts.ldb);
  x[isa::Abi::kLdc] = static_cast<std::uint64_t>(opts.ldc);

  std::unordered_map<int, int> labels;
  const auto& code = prog.code();
  for (std::size_t i = 0; i < code.size(); ++i)
    if (code[i].op == isa::Op::kLabel) labels[code[i].label] = static_cast<int>(i);

  trace.clear();
  int pc = 0;
  const int n = static_cast<int>(code.size());
  while (pc < n) {
    if (static_cast<long>(trace.size()) > opts.max_dynamic_instructions)
      return DeadlineExceededError(
          "pipeline: dynamic instruction limit exceeded (runaway loop?)");
    const isa::Instruction& inst = code[pc];
    DynInst d;
    d.static_idx = pc;
    const auto mem_addr = [&]() -> std::uint64_t {
      const std::uint64_t base = x[inst.src1.index];
      return inst.addr == isa::AddrMode::kOffset
                 ? base + static_cast<std::int64_t>(inst.imm)
                 : base;
    };
    const auto do_post_index = [&] {
      if (inst.addr == isa::AddrMode::kPostIndex) {
        x[inst.src1.index] += static_cast<std::int64_t>(inst.imm);
        d.dst2 = reg_id(inst.src1);
      }
    };
    switch (inst.op) {
      case isa::Op::kLdrQ:
      case isa::Op::kLdrS:
        d.cls = Cls::kLoad;
        d.dst = reg_id(inst.dst);
        d.src[0] = reg_id(inst.src1);
        d.addr = mem_addr();
        d.has_addr = true;
        do_post_index();
        trace.push_back(d);
        break;
      case isa::Op::kStrQ:
      case isa::Op::kStrS:
        d.cls = Cls::kStore;
        d.src[0] = reg_id(inst.dst);   // value register
        d.src[1] = reg_id(inst.src1);  // base register
        d.addr = mem_addr();
        d.has_addr = true;
        do_post_index();
        trace.push_back(d);
        break;
      case isa::Op::kFmla:
      case isa::Op::kFmlaS:
        d.cls = Cls::kFma;
        d.dst = reg_id(inst.dst);
        d.src[0] = reg_id(inst.dst);  // accumulator is read
        d.src[1] = reg_id(inst.src1);
        d.src[2] = reg_id(inst.src2);
        trace.push_back(d);
        break;
      case isa::Op::kMovi0:
        d.cls = Cls::kInt;  // zeroing idiom, effectively free
        d.dst = reg_id(inst.dst);
        trace.push_back(d);
        break;
      case isa::Op::kPrfm:
        d.cls = Cls::kPrfm;
        d.src[0] = reg_id(inst.src1);
        d.addr = mem_addr();
        d.has_addr = true;
        trace.push_back(d);
        break;
      case isa::Op::kMovReg:
        x[inst.dst.index] = x[inst.src1.index];
        d.cls = Cls::kInt;
        d.dst = reg_id(inst.dst);
        d.src[0] = reg_id(inst.src1);
        trace.push_back(d);
        break;
      case isa::Op::kMovImm:
        x[inst.dst.index] = static_cast<std::uint64_t>(inst.imm);
        d.cls = Cls::kInt;
        d.dst = reg_id(inst.dst);
        trace.push_back(d);
        break;
      case isa::Op::kAddReg:
        x[inst.dst.index] = x[inst.src1.index] + x[inst.src2.index];
        d.cls = Cls::kInt;
        d.dst = reg_id(inst.dst);
        d.src[0] = reg_id(inst.src1);
        d.src[1] = reg_id(inst.src2);
        trace.push_back(d);
        break;
      case isa::Op::kAddImm:
        x[inst.dst.index] =
            x[inst.src1.index] + static_cast<std::int64_t>(inst.imm);
        d.cls = Cls::kInt;
        d.dst = reg_id(inst.dst);
        d.src[0] = reg_id(inst.src1);
        trace.push_back(d);
        break;
      case isa::Op::kLslImm:
        x[inst.dst.index] = x[inst.src1.index] << inst.imm;
        d.cls = Cls::kInt;
        d.dst = reg_id(inst.dst);
        d.src[0] = reg_id(inst.src1);
        trace.push_back(d);
        break;
      case isa::Op::kSubsImm:
        x[inst.dst.index] =
            x[inst.src1.index] - static_cast<std::uint64_t>(inst.imm);
        zero_flag = (x[inst.dst.index] == 0);
        d.cls = Cls::kInt;
        d.dst = reg_id(inst.dst);
        d.src[0] = reg_id(inst.src1);
        trace.push_back(d);
        // subs also writes flags; fold into the same dyn inst via dst2.
        trace.back().dst2 = kFlags;
        break;
      case isa::Op::kLabel:
        break;  // no dynamic instruction
      case isa::Op::kBne: {
        d.cls = Cls::kInt;
        d.src[0] = kFlags;
        trace.push_back(d);
        if (!zero_flag) {
          auto it = labels.find(inst.label);
          if (it == labels.end())
            return InternalError("pipeline: branch to unbound label");
          pc = it->second;
        }
        break;
      }
      case isa::Op::kPtrue:
        d.cls = Cls::kInt;
        d.dst = reg_id(inst.dst);
        trace.push_back(d);
        break;
      case isa::Op::kWhilelt:
        d.cls = Cls::kInt;
        d.dst = reg_id(inst.dst);
        d.src[0] = reg_id(inst.src1);
        d.src[1] = reg_id(inst.src2);
        trace.push_back(d);
        break;
      case isa::Op::kCntW:
        x[inst.dst.index] = static_cast<std::uint64_t>(lanes);
        d.cls = Cls::kInt;
        d.dst = reg_id(inst.dst);
        trace.push_back(d);
        break;
      case isa::Op::kLd1W:
        d.cls = Cls::kLoad;
        d.dst = reg_id(inst.dst);
        d.src[0] = reg_id(inst.src1);
        d.src[1] = kPBase + inst.pred;
        d.addr = x[inst.src1.index] +
                 static_cast<std::int64_t>(inst.imm) * lanes * sizeof(float);
        d.has_addr = true;
        trace.push_back(d);
        break;
      case isa::Op::kSt1W:
        d.cls = Cls::kStore;
        d.src[0] = reg_id(inst.dst);   // value register
        d.src[1] = reg_id(inst.src1);  // base register
        d.src[2] = kPBase + inst.pred;
        d.addr = x[inst.src1.index] +
                 static_cast<std::int64_t>(inst.imm) * lanes * sizeof(float);
        d.has_addr = true;
        trace.push_back(d);
        break;
      case isa::Op::kLd1RW:
        d.cls = Cls::kLoad;
        d.dst = reg_id(inst.dst);
        d.src[0] = reg_id(inst.src1);
        d.src[1] = kPBase + inst.pred;
        d.addr = mem_addr();
        d.has_addr = true;
        trace.push_back(d);
        break;
      case isa::Op::kFmlaZ:
        d.cls = Cls::kFma;
        d.dst = reg_id(inst.dst);
        d.src[0] = reg_id(inst.dst);  // accumulator is read (p/m merging)
        d.src[1] = reg_id(inst.src1);
        d.src[2] = reg_id(inst.src2);
        d.src[3] = kPBase + inst.pred;
        trace.push_back(d);
        break;
    }
    ++pc;
  }
  return Status::OK();
}

// Resolves the execution VL for a program against SimOptions, mirroring the
// functional interpreter's rule.
Status resolve_lanes(const isa::Program& prog, const SimOptions& opts,
                     int& lanes) {
  lanes = prog.lanes();
  if (prog.vl_agnostic() && opts.vector_length != 0) {
    if (opts.vector_length < prog.lanes())
      return InvalidArgumentError(
          "pipeline: VL below the program's generation width");
    lanes = opts.vector_length;
  }
  return Status::OK();
}

struct Scheduler {
  const hw::HardwareModel& hw;
  const SimOptions& opts;
  CacheSim cache;
  std::array<double, kRegCount> reg_ready{};
  std::array<double, 5> port_free{};

  Scheduler(const hw::HardwareModel& h, const SimOptions& o)
      : hw(h), opts(o), cache(h) {
    for (const auto& range : o.warm_ranges) cache.warm(range.first, range.second);
  }

  double cls_cpi(Cls c) const {
    switch (c) {
      case Cls::kFma: return hw.cpi_fma;
      case Cls::kLoad: return hw.cpi_load;
      case Cls::kStore: return hw.cpi_store;
      case Cls::kInt: return hw.cpi_int;
      case Cls::kPrfm: return hw.cpi_load;
    }
    return 1.0;
  }

  // Schedules the trace starting at cycle t0; updates stats; writes the
  // cycle when the last instruction's result is available to `end`.
  Status run(const std::vector<DynInst>& trace, double t0, SimStats& stats,
             double& end) {
    if (failpoint::should_fail("sim.cycle_budget"))
      return DeadlineExceededError("pipeline: cycle budget exceeded (injected)");
    const int n = static_cast<int>(trace.size());
    std::vector<char> issued(n, 0);
    int head = 0;
    double t = t0;
    int width_used = 0;
    double last_completion = t0;

    const int window = std::max(1, hw.ooo_window);
    while (head < n) {
      // An instruction issues "within cycle t" at effective time
      // max(t, port-free, sources-ready) as long as that lands before t+1;
      // this is what lets a cpi=0.5 FMA port start two operations per
      // cycle instead of being quantized to the integer clock.
      int pick = -1;
      double start = 0;
      if (width_used < hw.issue_width) {
        const int end = std::min(n, head + window);
        for (int j = head; j < end; ++j) {
          if (issued[j]) continue;
          const DynInst& d = trace[j];
          double eff = std::max(t, port_free[static_cast<int>(d.cls)]);
          for (int s : d.src)
            if (s >= 0) eff = std::max(eff, reg_ready[s]);
          if (eff < t + 1.0 - 1e-9) {
            pick = j;
            start = eff;
            break;
          }
        }
      }
      if (pick < 0) {
        t += 1.0;
        if (opts.max_cycles > 0 && t > opts.max_cycles)
          return DeadlineExceededError("pipeline: cycle budget exceeded");
        width_used = 0;
        continue;
      }
      const DynInst& d = trace[pick];
      issued[pick] = 1;
      ++width_used;
      auto& port = port_free[static_cast<int>(d.cls)];
      port = start + cls_cpi(d.cls);

      double completion = start;
      switch (d.cls) {
        case Cls::kFma: {
          completion = start + hw.lat_fma;
          ++stats.fmas;
          break;
        }
        case Cls::kLoad: {
          double lat = hw.lat_load;
          int level = 0;
          if (opts.use_caches && cache.levels() > 0) {
            level = cache.access(d.addr);
            lat += hw.level_latency(level) - hw.caches.front().latency_cycles;
          }
          if (static_cast<int>(stats.level_hits.size()) <= level)
            stats.level_hits.resize(level + 1, 0);
          ++stats.level_hits[level];
          completion = start + lat;
          ++stats.loads;
          break;
        }
        case Cls::kStore: {
          completion = start + hw.lat_store;
          if (opts.use_caches && cache.levels() > 0) (void)cache.access(d.addr);
          ++stats.stores;
          break;
        }
        case Cls::kInt:
          completion = start + hw.lat_int;
          break;
        case Cls::kPrfm:
          if (opts.use_caches && cache.levels() > 0) cache.prefetch(d.addr);
          completion = start;  // asynchronous
          break;
      }
      if (d.dst >= 0) reg_ready[d.dst] = completion;
      if (d.dst2 >= 0)
        reg_ready[d.dst2] = std::max(reg_ready[d.dst2], start + hw.lat_int);
      last_completion = std::max(last_completion, completion);
      ++stats.instructions;

      // Per-stage accounting (Fig 3) against static indices.
      if (opts.mainloop_begin >= 0) {
        if (d.static_idx < opts.mainloop_begin)
          stats.prologue_end = std::max(stats.prologue_end, completion);
        else if (d.static_idx < opts.epilogue_begin)
          stats.mainloop_end = std::max(stats.mainloop_end, completion);
        else
          stats.epilogue_end = std::max(stats.epilogue_end, completion);
      }
      while (head < n && issued[head]) ++head;
    }
    end = last_completion;
    return Status::OK();
  }
};

/// Places one simulated run on the trace timeline (pid 2): simulated
/// cycles are converted to wall microseconds through the model's clock and
/// anchored at the host time the simulation started, so a simulated kernel
/// and the host code that invoked it read on one ruler. Per-stage spans
/// when the Fig-3 stage boundaries were supplied, one kernel span
/// otherwise.
void emit_sim_timeline(const hw::HardwareModel& hw, const SimOptions& opts,
                       const SimStats& stats, double anchor_us) {
  const double ghz = hw.freq_ghz > 0 ? hw.freq_ghz : 1.0;
  const auto us = [&](double cycles) {
    return std::max(0.0, cycles) / (ghz * 1e3);
  };
  if (opts.mainloop_begin >= 0) {
    obs::emit_virtual_span("sim-kernel", "prologue", anchor_us,
                           us(stats.prologue_end));
    obs::emit_virtual_span("sim-kernel", "mainloop",
                           anchor_us + us(stats.prologue_end),
                           us(stats.mainloop_end - stats.prologue_end));
    obs::emit_virtual_span("sim-kernel", "epilogue",
                           anchor_us + us(stats.mainloop_end),
                           us(stats.epilogue_end - stats.mainloop_end));
  } else {
    obs::emit_virtual_span("sim-kernel", "kernel", anchor_us,
                           us(stats.cycles));
  }
}

}  // namespace

Status simulate_checked(const isa::Program& prog, const hw::HardwareModel& hw,
                        const SimOptions& opts, SimStats& out) {
  obs::SpanScope host_span("sim.simulate", prog.code().size(), 0);
  const bool traced = obs::trace_enabled();
  const double anchor_us = traced ? obs::trace_now_us() : 0.0;
  out = SimStats{};
  int lanes = 0;
  AUTOGEMM_RETURN_IF_ERROR(resolve_lanes(prog, opts, lanes));
  std::vector<DynInst> trace;
  AUTOGEMM_RETURN_IF_ERROR(build_trace(prog, opts, lanes, trace));
  Scheduler sched(hw, opts);
  double end = 0.0;
  AUTOGEMM_RETURN_IF_ERROR(sched.run(trace, opts.launch_overhead, out, end));
  out.cycles = end;
  if (traced) emit_sim_timeline(hw, opts, out, anchor_us);
  return Status::OK();
}

Status simulate_repeated_checked(const isa::Program& prog,
                                 const hw::HardwareModel& hw,
                                 const SimOptions& opts, int launches,
                                 SimStats& out) {
  out = SimStats{};
  int lanes = 0;
  AUTOGEMM_RETURN_IF_ERROR(resolve_lanes(prog, opts, lanes));
  std::vector<DynInst> trace;
  AUTOGEMM_RETURN_IF_ERROR(build_trace(prog, opts, lanes, trace));
  Scheduler sched(hw, opts);
  double t = 0.0;
  for (int i = 0; i < launches; ++i) {
    t += opts.launch_overhead;
    AUTOGEMM_RETURN_IF_ERROR(sched.run(trace, t, out, t));
  }
  out.cycles = t;
  return Status::OK();
}

SimStats simulate(const isa::Program& prog, const hw::HardwareModel& hw,
                  const SimOptions& opts) {
  SimStats stats;
  const Status s = simulate_checked(prog, hw, opts, stats);
  if (!s.ok()) throw std::runtime_error(s.to_string());
  return stats;
}

SimStats simulate_repeated(const isa::Program& prog,
                           const hw::HardwareModel& hw, const SimOptions& opts,
                           int launches) {
  SimStats stats;
  const Status s = simulate_repeated_checked(prog, hw, opts, launches, stats);
  if (!s.ok()) throw std::runtime_error(s.to_string());
  return stats;
}

}  // namespace autogemm::sim
