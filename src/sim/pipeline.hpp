// Cycle-level pipeline simulator.
//
// Executes a generated micro-kernel's *dynamic instruction stream* against
// a hw::HardwareModel and reports cycles. Substitutes for the paper's five
// Arm machines on this x86 host: the same causes the paper identifies —
// FMA/load latency and throughput, register dependencies, the scheduler
// window, and cache-level hit latency — produce the cycle counts here.
//
// Model (documented simplifications in DESIGN.md):
//  * two phases: a functional X-register pass unrolls control flow into a
//    trace (counted loops = perfectly predicted branches), then a
//    scoreboard schedules the trace;
//  * issue: up to `issue_width` instructions enter execution per cycle; a
//    window of `ooo_window` oldest un-issued instructions is searched
//    oldest-first (window 1 = strict in-order issue, wide window models
//    register-renaming out-of-order cores, so WAR/WAW are not modeled);
//  * each instruction class has a port with reciprocal throughput `cpi_*`
//    and result latency `lat_*`; loads add the serving cache level's
//    latency on top of an L1 hit cost;
//  * fmla reads its accumulator: back-to-back FMAs to one register are
//    spaced by lat_fma, which is why micro-kernels need mr*vnr independent
//    accumulators — the effect Table II's register budget is about.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "hw/hardware_model.hpp"
#include "isa/program.hpp"

namespace autogemm::sim {

struct SimOptions {
  // Synthetic base addresses for the three matrices (distinct regions).
  std::uint64_t a_base = 0x1000'0000;
  std::uint64_t b_base = 0x2000'0000;
  std::uint64_t c_base = 0x3000'0000;
  long lda = 0, ldb = 0, ldc = 0;  ///< element strides bound to x3..x5

  /// Cycles charged before the first instruction (T_launch). The fusion
  /// evaluation compares one launch for a fused sequence against one per
  /// tile for separate kernel calls.
  double launch_overhead = 12.0;

  /// Ranges pre-touched in the cache model before simulation, modeling data
  /// that was just packed/produced: {base, bytes}.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> warm_ranges;

  /// When false, every load costs a flat L1 hit (the Section III-B model's
  /// assumption); when true the cache hierarchy decides.
  bool use_caches = true;

  /// Execution vector length in fp32 lanes for vl_agnostic (SVE) programs:
  /// 0 runs at the program's generation width, otherwise must be >= that
  /// width. Fixed-width NEON programs ignore it. Affects `[.., mul vl]`
  /// address arithmetic and the value kCntW materializes.
  int vector_length = 0;

  long max_dynamic_instructions = 20'000'000;

  /// Scheduler watchdog: simulated-cycle budget (0 = unlimited). A
  /// pathological trace that stops retiring — or an injected
  /// "sim.cycle_budget" fault — surfaces as kDeadlineExceeded from the
  /// checked entry points instead of an unbounded simulation.
  double max_cycles = 0;

  // Optional stage boundaries (static instruction indices) for per-stage
  // cycle accounting (Fig 3): prologue = [0, mainloop_begin).
  int mainloop_begin = -1;
  int epilogue_begin = -1;
};

struct SimStats {
  double cycles = 0;  ///< includes launch overhead
  long instructions = 0;
  long fmas = 0;
  long loads = 0;
  long stores = 0;
  /// Loads served per hierarchy level; index caches.size() = DRAM.
  std::vector<long> level_hits;

  // Stage completion times (cycle of last issue+latency in each stage);
  // only filled when SimOptions carries stage boundaries.
  double prologue_end = 0;
  double mainloop_end = 0;
  double epilogue_end = 0;

  /// Fraction of peak FMA throughput achieved: fmas * cpi_fma / cycles.
  double efficiency(const hw::HardwareModel& hw) const {
    if (cycles <= 0) return 0.0;
    return static_cast<double>(fmas) * hw.cpi_fma / cycles;
  }
  /// GFLOPS at the chip's clock for an fp32 workload of `flops`.
  double gflops(const hw::HardwareModel& hw, double flops) const {
    if (cycles <= 0) return 0.0;
    return flops / (cycles / hw.freq_ghz);  // cycles/GHz = nanoseconds
  }
};

/// Simulates one program execution, reporting faults — dynamic-instruction
/// overrun, cycle-budget overrun, unbound labels — as a Status. `out` is
/// valid only when the returned status is OK.
Status simulate_checked(const isa::Program& prog, const hw::HardwareModel& hw,
                        const SimOptions& opts, SimStats& out);

/// As simulate_checked() for `launches` identical back-to-back runs
/// (launch overhead charged each time, cache kept warm across runs).
Status simulate_repeated_checked(const isa::Program& prog,
                                 const hw::HardwareModel& hw,
                                 const SimOptions& opts, int launches,
                                 SimStats& out);

/// Legacy wrapper over simulate_checked(); throws std::runtime_error on a
/// non-OK status.
SimStats simulate(const isa::Program& prog, const hw::HardwareModel& hw,
                  const SimOptions& opts);

/// Legacy wrapper over simulate_repeated_checked(); throws on non-OK.
SimStats simulate_repeated(const isa::Program& prog,
                           const hw::HardwareModel& hw, const SimOptions& opts,
                           int launches);

}  // namespace autogemm::sim
