// Multi-level fully-associative LRU cache simulator.
//
// The pipeline simulator consults this model on every load to decide which
// hierarchy level serves it; that is what reproduces the paper's capacity
// effects (the KP920 K=256 cliff in Fig 6 happens exactly when the B block
// stops fitting in the 64 KiB L1).
//
// Fully-associative LRU is a deliberate simplification: the working sets
// the micro-kernels touch are orders of magnitude below the level
// capacities except when they overflow outright, and overflow behaviour —
// the thing the evaluation depends on — is capacity-driven, not
// conflict-driven.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "hw/hardware_model.hpp"

namespace autogemm::sim {

class CacheSim {
 public:
  explicit CacheSim(const hw::HardwareModel& hw);

  /// Looks up the line containing `addr`; returns the level index that
  /// serves it (caches.size() = DRAM) and installs the line in every level
  /// (inclusive hierarchy).
  int access(std::uint64_t addr);

  /// Software prefetch: installs the line without reporting a level.
  void prefetch(std::uint64_t addr);

  /// Touches every line in [base, base+bytes) — used to model a warmed
  /// cache (data produced/packed just before the kernel runs).
  void warm(std::uint64_t base, std::uint64_t bytes);

  int levels() const { return static_cast<int>(lru_.size()); }

 private:
  struct Level {
    std::size_t capacity_lines;
    // LRU order: front = most recent. Map gives O(1) membership + splice.
    std::list<std::uint64_t> order;
    std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> map;

    bool touch(std::uint64_t line);   // returns true on hit
    void insert(std::uint64_t line);  // install (may evict)
  };

  int line_bytes_;
  std::vector<Level> lru_;
};

}  // namespace autogemm::sim
