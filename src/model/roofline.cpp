#include "model/roofline.hpp"

#include <algorithm>

namespace autogemm::model {

double gemm_dram_ai(long m, long n, long k) {
  const double flops = 2.0 * m * n * k;
  const double bytes = 4.0 * (static_cast<double>(m) * k +
                              static_cast<double>(k) * n +
                              2.0 * static_cast<double>(m) * n);
  return flops / bytes;
}

namespace {
RooflinePoint make_point(double peak, double bw, double ai) {
  RooflinePoint p;
  p.ai = ai;
  const double mem_bound = bw * ai;
  p.attainable_gflops = std::min(peak, mem_bound);
  p.compute_bound = peak <= mem_bound;
  return p;
}
}  // namespace

RooflinePoint roofline_single_core(const hw::HardwareModel& hw, double ai) {
  return make_point(hw.peak_gflops_core(), hw.dram_bw_gbs, ai);
}

RooflinePoint roofline_chip(const hw::HardwareModel& hw, double ai) {
  return make_point(hw.peak_gflops_chip(), hw.dram_bw_gbs, ai);
}

double ridge_ai(const hw::HardwareModel& hw) {
  return hw.peak_gflops_chip() / hw.dram_bw_gbs;
}

}  // namespace autogemm::model
