// Roofline model (Fig 10): attainable GFLOPS as a function of arithmetic
// intensity under the chip's compute peak and its DRAM / last-level-cache
// bandwidth ceilings.
#pragma once

#include "hw/hardware_model.hpp"

namespace autogemm::model {

/// Arithmetic intensity of a GEMM in flops per DRAM byte, assuming each of
/// A, B, C is read once and C written once (the compulsory traffic):
/// 2*M*N*K / (4*(M*K + K*N + 2*M*N)).
double gemm_dram_ai(long m, long n, long k);

struct RooflinePoint {
  double ai = 0;                 ///< flops/byte
  double attainable_gflops = 0;  ///< min(compute peak, bw * ai)
  bool compute_bound = false;
};

/// Single-core roofline: one core's FMA peak against its share of DRAM BW
/// (the paper plots the full-chip bandwidth for both, which we follow).
RooflinePoint roofline_single_core(const hw::HardwareModel& hw, double ai);

/// Full-chip roofline.
RooflinePoint roofline_chip(const hw::HardwareModel& hw, double ai);

/// The AI at which the chip transitions from memory- to compute-bound
/// (ridge point): peak_gflops / dram_bw.
double ridge_ai(const hw::HardwareModel& hw);

}  // namespace autogemm::model
