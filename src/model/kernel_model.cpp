#include "model/kernel_model.hpp"

#include <algorithm>
#include <cmath>

namespace autogemm::model {
namespace {

int vnr_of(const codegen::TileSize& t, const hw::HardwareModel& hw) {
  return (t.nr + hw.lanes - 1) / hw.lanes;
}

// Stall cycles per occurrence that the chip's scheduler window can absorb.
// Eqns 6-10 assume in-order issue (the Fig 3 reference machine, where the
// budget is 0 and the closed forms hold exactly); a real out-of-order
// window overlaps the A-block loads with older FMAs and register renaming
// breaks the FMA->LOAD->FMA chain — but only up to a latency the window
// can span, so an L1-hit stall vanishes on Graviton2/M2 while an L2/L3
// miss stays exposed (the Fig 6 K=256 cliff). This is the analytic
// counterpart of what the pipeline simulator shows per instruction, and it
// is why the paper measures rotation as +3% on KP920 (small window) yet
// neutral on Graviton2/M2, with efficiencies above its own in-order model.
double hide_budget(const hw::HardwareModel& hw) {
  return std::max(0.0, (hw.ooo_window - 8.0) / 8.0);
}

}  // namespace

bool is_memory_bound(const codegen::TileSize& tile,
                     const hw::HardwareModel& hw) {
  return codegen::ai_max(tile.mr, tile.nr) < hw.sigma_ai;
}

double t_prologue(const codegen::TileSize& tile, const hw::HardwareModel& hw) {
  const int vnr = vnr_of(tile, hw);
  return (tile.mr * vnr + tile.mr + vnr) * hw.cpi_load + hw.lat_load;
}

double t_mainloop(const codegen::TileSize& tile, int kc,
                  const hw::HardwareModel& hw, bool memory_bound,
                  bool rotate_registers) {
  const int vnr = vnr_of(tile, hw);
  const int vkc = kc / hw.lanes;  // floor(kc_vec): full unrolled blocks
  // Per-k-step period: every accumulator is updated once per k step and
  // its next update is a true dependence, so the period can never drop
  // below lat_fma — tiles with too few accumulators (mr*vnr*cpi < L_fma)
  // are FMA-latency-bound. On the reference machine (L=8, IPC=1) this
  // floor coincides with the issue time for every Table II tile, which is
  // why the paper's closed forms never show it.
  const double per_k = std::max(tile.mr * vnr * hw.cpi_fma, hw.lat_fma);
  const double fma_time = per_k * (static_cast<double>(vkc) * hw.lanes);
  const double budget = hide_budget(hw);
  const double a_stall_cost =
      std::max(0.0, tile.mr * hw.cpi_load + hw.lat_load - budget);
  if (!memory_bound) {
    // Eqn 6 / Eqn 9: the A-block loads stall the loop once per block
    // (basic) or once per two blocks (rotated: spare registers prefetch the
    // next block under the FMA stream); the scheduler window absorbs up to
    // hide_budget cycles of each stall.
    const double a_stalls =
        rotate_registers ? std::ceil(vkc / 2.0) : static_cast<double>(vkc);
    return fma_time + a_stalls * a_stall_cost;
  }
  // Eqn 10: with double-buffered B registers the FMA->LOAD->FMA dependency
  // disappears and the loop costs FMA time plus one A-load stall per block
  // (the same structure as Eqn 6).
  const double rotated = fma_time + vkc * a_stall_cost;
  if (rotate_registers) return rotated;
  // Eqn 8: the single-buffered B registers serialize on the load latency.
  // On the paper's reference machine (L=8, IPC=1) this chain dominates; on
  // chips with short load latency and multiple load ports it can fall
  // below the FMA-stream floor, so the loop costs the slower of the two
  // (a kernel can never run faster than its rotated variant). Register
  // renaming on out-of-order chips removes the chain like rotation does,
  // again up to the window's budget per block.
  const double chain =
      tile.mr * hw.cpi_load * (static_cast<double>(vkc) * hw.lanes) +
      hw.lat_load * vkc * (hw.lanes + 1);
  const double rotated_inorder =
      fma_time + vkc * (tile.mr * hw.cpi_load + hw.lat_load);
  const double extra_per_block =
      std::max(0.0, (std::max(chain, rotated_inorder) - rotated_inorder) /
                        std::max(1, vkc));
  return rotated + vkc * std::max(0.0, extra_per_block - budget);
}

double t_epilogue(const codegen::TileSize& tile, int kc,
                  const hw::HardwareModel& hw) {
  const int vnr = vnr_of(tile, hw);
  const int rem = kc - (kc / hw.lanes) * hw.lanes;
  const double per_k = std::max(tile.mr * vnr * hw.cpi_fma, hw.lat_fma);
  return per_k * rem + hw.lat_fma + tile.mr * vnr * hw.cpi_store;
}

KernelCost kernel_cost(const codegen::TileSize& tile, int kc,
                       const hw::HardwareModel& hw,
                       const KernelModelOptions& opts) {
  KernelCost cost;
  cost.memory_bound = opts.force_memory_bound >= 0
                          ? opts.force_memory_bound != 0
                          : is_memory_bound(tile, hw);
  cost.launch = opts.launch_overhead;
  cost.prologue = t_prologue(tile, hw);
  cost.mainloop =
      t_mainloop(tile, kc, hw, cost.memory_bound, opts.rotate_registers);
  cost.epilogue = t_epilogue(tile, kc, hw);
  if (cost.memory_bound) {
    // sigma_AI ceiling (Fig 2): a tile whose arithmetic intensity sits
    // below the hardware threshold cannot reach peak — its attainable
    // fraction of peak is AI/sigma_AI, so its cycle count is floored at
    // ideal_fma * sigma_AI / AI(kc). This is what keeps DMT from drifting
    // to wide-skinny low-AI tiles on strict chips like KP920 while letting
    // lenient chips (Graviton2, M2) use them at the edges (Fig 7).
    const int vnr = vnr_of(tile, hw);
    const double ideal_fma = tile.mr * vnr * hw.cpi_fma * kc;
    const double floor_cycles =
        ideal_fma * hw.sigma_ai /
        codegen::ai_finite(tile.mr, tile.nr, kc, hw.lanes);
    if (cost.total() < floor_cycles) cost.mainloop += floor_cycles - cost.total();
  }
  return cost;
}

double t_fused_boundary(const codegen::TileSize& cur, int kc_cur,
                        const codegen::TileSize& next,
                        const hw::HardwareModel& hw) {
  const int vnr_cur = vnr_of(cur, hw);
  const int vnr_next = vnr_of(next, hw);
  const int rem = kc_cur - (kc_cur / hw.lanes) * hw.lanes;
  const double rem_fma = cur.mr * vnr_cur * hw.cpi_fma * rem;

  const bool cur_mem = is_memory_bound(cur, hw);
  const bool next_mem = is_memory_bound(next, hw);
  if (!cur_mem && !next_mem) {
    // Eqn 11 verbatim (c_to_c): the stores of the current tile hide under
    // the next tile's C and A loads; only the load stream remains visible.
    return rem_fma + (next.mr * vnr_next + next.mr) * hw.cpi_load +
           hw.lat_load;
  }
  // The paper defines the remaining three modes (m_to_m, c_to_m, m_to_c)
  // pictorially (Fig 4) without closed forms; we model the boundary as the
  // slower of the two overlapped streams — the store stream of the current
  // tile vs. the full prologue load stream of the next — which reduces to
  // Eqn 11's structure when the load stream dominates.
  const double store_stream = cur.mr * vnr_cur * hw.cpi_store;
  const double load_stream =
      (next.mr * vnr_next + next.mr + vnr_next) * hw.cpi_load;
  return rem_fma + std::max(store_stream, load_stream) + hw.lat_load;
}

double sequence_cost(const codegen::TileSize& tile, int kc, int count,
                     const hw::HardwareModel& hw,
                     const KernelModelOptions& opts, bool fuse) {
  if (count <= 0) return 0.0;
  const KernelCost one = kernel_cost(tile, kc, hw, opts);
  if (!fuse || count == 1) return one.total() * count;
  // Fused: first prologue and last epilogue are paid in full; the count-1
  // interior boundaries collapse to t_fused_boundary and T_launch is paid
  // once for the whole sequence.
  const double boundary = t_fused_boundary(tile, kc, tile, hw);
  return opts.launch_overhead + one.prologue + count * one.mainloop +
         (count - 1) * boundary + one.epilogue;
}

}  // namespace autogemm::model
