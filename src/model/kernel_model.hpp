// Analytic micro-kernel performance model — Section III-B/C, Eqns 4-11.
//
// Projects the cycle cost of a generated micro-kernel from tile shape, kc,
// and the hardware parameters, without simulating. This is the model that
// (a) the step-wise evaluation validates (Fig 3's closed forms), (b) the
// DMT algorithm minimizes (Algorithm 1's T_r), and (c) TVM-style tuning
// uses to prune the parameter search space (Eqn 13).
#pragma once

#include "codegen/tile_sizes.hpp"
#include "hw/hardware_model.hpp"

namespace autogemm::model {

struct KernelModelOptions {
  bool rotate_registers = false;  ///< Section III-C1 applied
  /// When >= 0 overrides the compute/memory-bound classification that is
  /// otherwise derived from AI_max(tile) >= hw.sigma_ai.
  int force_memory_bound = -1;
  double launch_overhead = 12.0;  ///< T_launch cycles
};

/// Stage-resolved cycle projection of one micro-kernel invocation.
struct KernelCost {
  double launch = 0;
  double prologue = 0;
  double mainloop = 0;
  double epilogue = 0;
  bool memory_bound = false;
  double total() const { return launch + prologue + mainloop + epilogue; }
};

/// True when the tile cannot keep the FMA pipes busy past sigma_AI:
/// AI_max(mr, nr) < hw.sigma_ai (the paper's classification).
bool is_memory_bound(const codegen::TileSize& tile,
                     const hw::HardwareModel& hw);

/// Eqn 5: T_prologue = (mr*vnr + mr + vnr)*cpi_load + L_load.
double t_prologue(const codegen::TileSize& tile, const hw::HardwareModel& hw);

/// Eqns 6/8 (basic) and 9/10 (rotating register allocation).
double t_mainloop(const codegen::TileSize& tile, int kc,
                  const hw::HardwareModel& hw, bool memory_bound,
                  bool rotate_registers);

/// Eqn 7: remainder FMAs + FMA drain + C stores.
double t_epilogue(const codegen::TileSize& tile, int kc,
                  const hw::HardwareModel& hw);

/// Eqn 4: the full per-invocation projection.
KernelCost kernel_cost(const codegen::TileSize& tile, int kc,
                       const hw::HardwareModel& hw,
                       const KernelModelOptions& opts = {});

/// Eqn 11 (c_to_c) and its analogues for the paper's four fusion modes:
/// projected cost of a fused boundary replacing (T_epilogue of `cur` +
/// T_launch + T_prologue of `next`). Stores of `cur` and loads of `next`
/// overlap on separate ports, and the launch overhead disappears.
double t_fused_boundary(const codegen::TileSize& cur, int kc_cur,
                        const codegen::TileSize& next,
                        const hw::HardwareModel& hw);

/// Projected cost of a run of `count` identical micro-kernels with or
/// without epilogue/prologue fusion — the quantity Fig 6's step-wise
/// comparison plots.
double sequence_cost(const codegen::TileSize& tile, int kc, int count,
                     const hw::HardwareModel& hw,
                     const KernelModelOptions& opts, bool fuse);

}  // namespace autogemm::model
