#include "isa/program.hpp"

namespace autogemm::isa {

Program::Counts Program::counts() const {
  Counts c;
  for (const auto& inst : code_) {
    if (inst.is_load()) ++c.loads;
    else if (inst.is_store()) ++c.stores;
    else if (inst.is_fma()) ++c.fmas;
    else if (inst.op == Op::kPrfm) ++c.prefetches;
    else if (inst.op == Op::kBne) ++c.branches;
    else if (inst.op != Op::kLabel) ++c.integer;
  }
  return c;
}

int Program::find_label(int label_id) const {
  for (std::size_t i = 0; i < code_.size(); ++i) {
    if (code_[i].op == Op::kLabel && code_[i].label == label_id)
      return static_cast<int>(i);
  }
  return -1;
}

}  // namespace autogemm::isa
