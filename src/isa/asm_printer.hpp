// Renders an isa::Program as AArch64 assembly text.
//
// Two flavours are produced, matching the paper's Listing 1 output:
//  * emit_asm()       — bare instruction text (one instruction per line),
//  * emit_cpp_wrapper() — a complete C++ function wrapping the instructions
//    in a GCC extended inline-asm block with the %[A]/%[B]/%[C]... operand
//    bindings and clobber list, compilable by an AArch64 toolchain.
#pragma once

#include <string>

#include "isa/program.hpp"

namespace autogemm::isa {

/// Bare AArch64 assembly for the program body.
std::string emit_asm(const Program& prog, bool with_comments = true);

/// Complete C++ translation unit: `void <name>(const float* A, const float*
/// B, float* C, long lda, long ldb, long ldc)` with the body as inline asm.
std::string emit_cpp_wrapper(const Program& prog);

}  // namespace autogemm::isa
