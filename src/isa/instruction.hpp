// A64 instruction IR: the NEON-era base subset plus the SVE predicated
// extension used by the sve_sim backend.
//
// The code generator (Listing 1 in the paper) emits this IR rather than raw
// text. One IR serves three consumers:
//   * asm_printer  -> AArch64 assembly / GCC inline-asm (the paper's output),
//   * sim::Interpreter -> functional execution on the host (correctness),
//   * sim::PipelineSimulator -> cycle counts under a chip model (performance).
//
// Only the subset of A64 the generated micro-kernels need is represented.
// Two instruction tiers coexist:
//   * fixed-width NEON ops (kLdrQ/kStrQ/kFmla...) move whole 128-bit-view
//     registers and are what the NeonBackend emits;
//   * SVE predicated ops (kLd1W/kSt1W/kLd1RW/kFmlaZ, governed by kPtrue/
//     kWhilelt predicates, with kCntW exposing the runtime vector length)
//     are vector-length-agnostic: the same program executes correctly at
//     any VL at or above its generation width, which is how the SveSim
//     backend covers irregular edge tiles without scalar fallbacks.
#pragma once

#include <cstdint>
#include <string>

namespace autogemm::isa {

/// Register file: X = 64-bit general purpose (x0..x30),
/// V = SIMD vector (v0..v31; NEON reads them as 128-bit q/v registers, the
/// SVE ops read the same architectural registers as scalable z registers —
/// one 32-register budget either way),
/// P = SVE predicate (p0..p15; the generators keep governing predicates in
/// p0..p7, the range predicated loads/stores/FMLAs accept).
enum class RegKind : std::uint8_t { kNone, kX, kV, kP };

struct Reg {
  RegKind kind = RegKind::kNone;
  std::int8_t index = -1;

  constexpr bool valid() const { return kind != RegKind::kNone; }
  constexpr bool operator==(const Reg&) const = default;
};

constexpr Reg X(int i) { return {RegKind::kX, static_cast<std::int8_t>(i)}; }
constexpr Reg V(int i) { return {RegKind::kV, static_cast<std::int8_t>(i)}; }
constexpr Reg P(int i) { return {RegKind::kP, static_cast<std::int8_t>(i)}; }

/// Opcodes. NEON vector memory ops move one full vector register; the SVE
/// tier moves only the lanes its governing predicate activates.
enum class Op : std::uint8_t {
  kLdrQ,     // ldr qD, [Xn], #imm  (post-index) | ldr qD, [Xn, #imm]
  kStrQ,     // str qD, ...
  kLdrS,     // ldr sD, ...   scalar 32-bit load (edge/corner lanes)
  kStrS,     // str sD, ...
  kFmla,     // fmla vD.4s, vN.4s, vM.s[lane]
  kFmlaS,    // fmadd sD, sN, sM, sD  (scalar corner-case FMA)
  kMovi0,    // movi vD.4s, #0  (zero an accumulator; beta=0 path)
  kPrfm,     // prfm PLDL1KEEP/PLDL2KEEP, [Xn, #imm]
  kMovReg,   // mov Xd, Xn
  kMovImm,   // mov Xd, #imm
  kAddReg,   // add Xd, Xn, Xm
  kAddImm,   // add Xd, Xn, #imm
  kLslImm,   // lsl Xd, Xn, #imm
  kSubsImm,  // subs Xd, Xn, #imm
  kLabel,    // local label (pseudo-op)
  kBne,      // b.ne label
  // --- SVE predicated tier (vector-length-agnostic) ----------------------
  kPtrue,    // ptrue pD.s                 all lanes active
  kWhilelt,  // whilelt pD.s, Xn, Xm       lane i active iff Xn + i < Xm
  kCntW,     // cntw Xd                    Xd = fp32 lanes per vector (VL)
  kLd1W,     // ld1w {zD.s}, pG/z, [Xn, #imm, mul vl]   imm in vector units
  kSt1W,     // st1w {zD.s}, pG,   [Xn, #imm, mul vl]
  kLd1RW,    // ld1rw {zD.s}, pG/z, [Xn, #imm]          broadcast one fp32
  kFmlaZ,    // fmla zD.s, pG/m, zN.s, zM.s             element-wise FMA
};

/// Memory addressing for load/store ops.
enum class AddrMode : std::uint8_t {
  kNone,
  kOffset,     // [Xn, #imm]           base unchanged
  kPostIndex,  // [Xn], #imm           base += imm after access
};

/// Prefetch target cache level (PLDL1KEEP / PLDL2KEEP).
enum class PrefetchLevel : std::uint8_t { kL1, kL2 };

struct Instruction {
  Op op = Op::kLabel;
  Reg dst;            // destination (result register, or store source)
  Reg src1, src2;     // sources (base register for memory ops in src1)
  std::int32_t imm = 0;
  std::int8_t lane = -1;           // fmla by-element lane index
  AddrMode addr = AddrMode::kNone;
  PrefetchLevel prefetch = PrefetchLevel::kL1;
  std::int32_t label = -1;         // kLabel id / kBne target id
  std::int8_t pred = -1;           // governing predicate index (SVE ops)
  std::string comment;             // carried through to the asm printer

  bool is_load() const {
    return op == Op::kLdrQ || op == Op::kLdrS || op == Op::kLd1W ||
           op == Op::kLd1RW;
  }
  bool is_store() const {
    return op == Op::kStrQ || op == Op::kStrS || op == Op::kSt1W;
  }
  bool is_fma() const {
    return op == Op::kFmla || op == Op::kFmlaS || op == Op::kFmlaZ;
  }
  bool is_vector_mem() const {
    return op == Op::kLdrQ || op == Op::kStrQ || op == Op::kLd1W ||
           op == Op::kSt1W;
  }
  bool is_branch() const { return op == Op::kBne; }
  bool is_predicated() const { return pred >= 0; }
};

/// Human-readable mnemonic for diagnostics.
std::string op_name(Op op);

/// Register name as it appears in assembly ("x12", "v7").
std::string reg_name(Reg r);

}  // namespace autogemm::isa
