// A generated micro-kernel program: instruction stream plus metadata.
#pragma once

#include <string>
#include <vector>

#include "isa/instruction.hpp"

namespace autogemm::isa {

/// Calling convention for generated micro-kernels, mirroring the paper's
/// inline-asm operand bindings:
///   x0 = &A[0][0]   x1 = &B[0][0]   x2 = &C[0][0]
///   x3 = lda        x4 = ldb        x5 = ldc      (in *elements*; the
/// generated prologue shifts them to bytes with `lsl #2`)
/// x6..x6+mr-1 hold A row pointers, x6+mr..x6+2mr-1 hold C row pointers,
/// x29 is the main-loop counter.
struct Abi {
  static constexpr int kA = 0;
  static constexpr int kB = 1;
  static constexpr int kC = 2;
  static constexpr int kLda = 3;
  static constexpr int kLdb = 4;
  static constexpr int kLdc = 5;
  static constexpr int kRowPtrBase = 6;
  static constexpr int kLoopCounter = 29;
};

/// Instruction stream for one micro-kernel of register-tile (mr x nr) with a
/// depth of kc, at SIMD lane width `lanes` (σ_lane: 4 for NEON, 16 for
/// SVE-512 chips like A64FX / Graviton3 per the paper).
///
/// A program marked vl_agnostic() was generated with the SVE predicated tier
/// at generation width `lanes` (its minimum VL): kWhilelt predicates sized
/// from the runtime kCntW make the same instruction stream correct at any
/// execution VL >= lanes, so `lanes` is a floor rather than a fixed width.
class Program {
 public:
  Program() = default;
  Program(std::string name, int mr, int nr, int kc, int lanes)
      : name_(std::move(name)), mr_(mr), nr_(nr), kc_(kc), lanes_(lanes) {}

  const std::string& name() const { return name_; }
  int mr() const { return mr_; }
  int nr() const { return nr_; }
  int kc() const { return kc_; }
  int lanes() const { return lanes_; }
  bool vl_agnostic() const { return vl_agnostic_; }
  void set_vl_agnostic(bool v) { vl_agnostic_ = v; }

  /// Appends an instruction and returns its index.
  int push(Instruction inst) {
    code_.push_back(std::move(inst));
    return static_cast<int>(code_.size()) - 1;
  }
  /// Allocates a fresh label id (to be placed with a kLabel instruction).
  int new_label() { return next_label_++; }

  const std::vector<Instruction>& code() const { return code_; }
  std::vector<Instruction>& code() { return code_; }
  bool empty() const { return code_.empty(); }
  std::size_t size() const { return code_.size(); }

  /// Instruction-count summary used by tests and reports.
  struct Counts {
    int loads = 0;
    int stores = 0;
    int fmas = 0;
    int prefetches = 0;
    int integer = 0;
    int branches = 0;
  };
  Counts counts() const;

  /// Index of the kLabel instruction with the given id, or -1.
  int find_label(int label_id) const;

 private:
  std::string name_;
  int mr_ = 0, nr_ = 0, kc_ = 0, lanes_ = 4;
  bool vl_agnostic_ = false;
  int next_label_ = 0;
  std::vector<Instruction> code_;
};

}  // namespace autogemm::isa
