#include "isa/asm_printer.hpp"

#include <sstream>

namespace autogemm::isa {
namespace {

// Vector register with element arrangement, e.g. "v3.4s".
std::string vreg_arranged(Reg r, int lanes) {
  return reg_name(r) + "." + std::to_string(lanes) + "s";
}

// Scalable-register view of a V register, e.g. "z3.s".
std::string zreg(Reg r) {
  return "z" + std::to_string(static_cast<int>(r.index)) + ".s";
}

// Predicate register with .s arrangement, e.g. "p1.s".
std::string preg(int index) { return "p" + std::to_string(index) + ".s"; }

// SVE contiguous-memory operand: [Xn] or [Xn, #imm, mul vl].
std::string sve_mem_operand(const Instruction& inst) {
  std::ostringstream os;
  os << "[" << reg_name(inst.src1);
  if (inst.imm != 0) os << ", #" << inst.imm << ", mul vl";
  os << "]";
  return os.str();
}

// Memory operand text for load/store/prfm.
std::string mem_operand(const Instruction& inst) {
  std::ostringstream os;
  switch (inst.addr) {
    case AddrMode::kOffset:
      os << "[" << reg_name(inst.src1);
      if (inst.imm != 0) os << ", #" << inst.imm;
      os << "]";
      break;
    case AddrMode::kPostIndex:
      os << "[" << reg_name(inst.src1) << "], #" << inst.imm;
      break;
    case AddrMode::kNone:
      os << "[" << reg_name(inst.src1) << "]";
      break;
  }
  return os.str();
}

std::string render(const Instruction& inst, int lanes) {
  std::ostringstream os;
  switch (inst.op) {
    case Op::kLdrQ:
      os << "ldr q" << static_cast<int>(inst.dst.index) << ", "
         << mem_operand(inst);
      break;
    case Op::kStrQ:
      os << "str q" << static_cast<int>(inst.dst.index) << ", "
         << mem_operand(inst);
      break;
    case Op::kLdrS:
      os << "ldr s" << static_cast<int>(inst.dst.index) << ", "
         << mem_operand(inst);
      break;
    case Op::kStrS:
      os << "str s" << static_cast<int>(inst.dst.index) << ", "
         << mem_operand(inst);
      break;
    case Op::kFmla:
      os << "fmla " << vreg_arranged(inst.dst, lanes) << ", "
         << vreg_arranged(inst.src1, lanes) << ", "
         << reg_name(inst.src2) << ".s[" << static_cast<int>(inst.lane) << "]";
      break;
    case Op::kFmlaS:
      os << "fmadd s" << static_cast<int>(inst.dst.index) << ", s"
         << static_cast<int>(inst.src1.index) << ", s"
         << static_cast<int>(inst.src2.index) << ", s"
         << static_cast<int>(inst.dst.index);
      break;
    case Op::kMovi0:
      os << "movi " << vreg_arranged(inst.dst, lanes) << ", #0";
      break;
    case Op::kPrfm:
      os << "prfm "
         << (inst.prefetch == PrefetchLevel::kL1 ? "PLDL1KEEP" : "PLDL2KEEP")
         << ", " << mem_operand(inst);
      break;
    case Op::kMovReg:
      os << "mov " << reg_name(inst.dst) << ", " << reg_name(inst.src1);
      break;
    case Op::kMovImm:
      os << "mov " << reg_name(inst.dst) << ", #" << inst.imm;
      break;
    case Op::kAddReg:
      os << "add " << reg_name(inst.dst) << ", " << reg_name(inst.src1)
         << ", " << reg_name(inst.src2);
      break;
    case Op::kAddImm:
      os << "add " << reg_name(inst.dst) << ", " << reg_name(inst.src1)
         << ", #" << inst.imm;
      break;
    case Op::kLslImm:
      os << "lsl " << reg_name(inst.dst) << ", " << reg_name(inst.src1)
         << ", #" << inst.imm;
      break;
    case Op::kSubsImm:
      os << "subs " << reg_name(inst.dst) << ", " << reg_name(inst.src1)
         << ", #" << inst.imm;
      break;
    case Op::kLabel:
      os << inst.label << ":";
      break;
    case Op::kBne:
      os << "b.ne " << inst.label << "b";
      break;
    case Op::kPtrue:
      os << "ptrue " << preg(inst.dst.index);
      break;
    case Op::kWhilelt:
      os << "whilelt " << preg(inst.dst.index) << ", " << reg_name(inst.src1)
         << ", " << reg_name(inst.src2);
      break;
    case Op::kCntW:
      os << "cntw " << reg_name(inst.dst);
      break;
    case Op::kLd1W:
      os << "ld1w {" << zreg(inst.dst) << "}, p" << static_cast<int>(inst.pred)
         << "/z, " << sve_mem_operand(inst);
      break;
    case Op::kSt1W:
      os << "st1w {" << zreg(inst.dst) << "}, p" << static_cast<int>(inst.pred)
         << ", " << sve_mem_operand(inst);
      break;
    case Op::kLd1RW:
      os << "ld1rw {" << zreg(inst.dst) << "}, p"
         << static_cast<int>(inst.pred) << "/z, " << mem_operand(inst);
      break;
    case Op::kFmlaZ:
      os << "fmla " << zreg(inst.dst) << ", p" << static_cast<int>(inst.pred)
         << "/m, " << zreg(inst.src1) << ", " << zreg(inst.src2);
      break;
  }
  return os.str();
}

}  // namespace

std::string emit_asm(const Program& prog, bool with_comments) {
  std::ostringstream os;
  for (const auto& inst : prog.code()) {
    if (inst.op != Op::kLabel) os << "    ";
    os << render(inst, prog.lanes());
    if (with_comments && !inst.comment.empty()) os << "  // " << inst.comment;
    os << "\n";
  }
  return os.str();
}

std::string emit_cpp_wrapper(const Program& prog) {
  std::ostringstream os;
  os << "// Auto-generated by autoGEMM micro-kernel generator.\n"
     << "// Tile: " << prog.mr() << "x" << prog.nr() << ", kc=" << prog.kc()
     << ", sigma_lane=" << prog.lanes() << "\n"
     << "void " << prog.name()
     << "(const float* A, const float* B, float* C,\n"
     << "    long lda, long ldb, long ldc) {\n"
     // The instruction stream addresses the ABI registers directly
     // (x0..x5), so pin the C++ arguments to them explicitly.
     << "  register const float* A_ __asm__(\"x0\") = A;\n"
     << "  register const float* B_ __asm__(\"x1\") = B;\n"
     << "  register float* C_ __asm__(\"x2\") = C;\n"
     << "  register long lda_ __asm__(\"x3\") = lda;\n"
     << "  register long ldb_ __asm__(\"x4\") = ldb;\n"
     << "  register long ldc_ __asm__(\"x5\") = ldc;\n"
     << "  __asm__ __volatile__(\n";
  for (const auto& inst : prog.code()) {
    std::string line = render(inst, prog.lanes());
    os << "    \"" << line << "\\n\"\n";
  }
  os << "    : [A] \"+r\"(A_), [B] \"+r\"(B_), [C] \"+r\"(C_),\n"
     << "      [lda] \"+r\"(lda_), [ldb] \"+r\"(ldb_), [ldc] \"+r\"(ldc_)\n"
     << "    :\n"
     << "    : \"cc\", \"memory\",\n"
     << "      \"x6\", \"x7\", \"x8\", \"x9\", \"x10\", \"x11\", \"x12\","
        " \"x13\", \"x14\", \"x15\", \"x29\",\n"
     << "      \"v0\", \"v1\", \"v2\", \"v3\", \"v4\", \"v5\", \"v6\","
        " \"v7\", \"v8\", \"v9\", \"v10\", \"v11\", \"v12\", \"v13\","
        " \"v14\", \"v15\",\n"
     << "      \"v16\", \"v17\", \"v18\", \"v19\", \"v20\", \"v21\","
        " \"v22\", \"v23\", \"v24\", \"v25\", \"v26\", \"v27\", \"v28\","
        " \"v29\", \"v30\", \"v31\"";
  if (prog.vl_agnostic()) {
    // Predicated programs also burn predicate registers and the whilelt
    // counter temps; v-clobbers cover the z registers' low halves, the
    // explicit z names cover the scalable upper bits.
    os << ",\n      \"p0\", \"p1\", \"p2\", \"p3\", \"p4\", \"p5\", \"p6\","
          " \"p7\", \"x26\", \"x27\", \"x28\"";
  }
  os << ");\n"
     << "}\n";
  return os.str();
}

}  // namespace autogemm::isa
