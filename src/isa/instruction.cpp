#include "isa/instruction.hpp"

namespace autogemm::isa {

std::string op_name(Op op) {
  switch (op) {
    case Op::kLdrQ: return "ldr.q";
    case Op::kStrQ: return "str.q";
    case Op::kLdrS: return "ldr.s";
    case Op::kStrS: return "str.s";
    case Op::kFmla: return "fmla";
    case Op::kFmlaS: return "fmadd";
    case Op::kMovi0: return "movi0";
    case Op::kPrfm: return "prfm";
    case Op::kMovReg: return "mov";
    case Op::kMovImm: return "mov.imm";
    case Op::kAddReg: return "add";
    case Op::kAddImm: return "add.imm";
    case Op::kLslImm: return "lsl";
    case Op::kSubsImm: return "subs";
    case Op::kLabel: return "label";
    case Op::kBne: return "b.ne";
    case Op::kPtrue: return "ptrue";
    case Op::kWhilelt: return "whilelt";
    case Op::kCntW: return "cntw";
    case Op::kLd1W: return "ld1w";
    case Op::kSt1W: return "st1w";
    case Op::kLd1RW: return "ld1rw";
    case Op::kFmlaZ: return "fmla.z";
  }
  return "?";
}

std::string reg_name(Reg r) {
  if (!r.valid()) return "<none>";
  const char prefix = r.kind == RegKind::kX   ? 'x'
                      : r.kind == RegKind::kP ? 'p'
                                              : 'v';
  return prefix + std::to_string(static_cast<int>(r.index));
}

}  // namespace autogemm::isa
