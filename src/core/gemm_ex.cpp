#include "core/gemm_ex.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "common/aligned_buffer.hpp"
#include "core/context.hpp"
#include "kernels/dispatch.hpp"
#include "kernels/packing.hpp"

namespace autogemm {
namespace {

using common::ConstMatrixView;
using common::MatrixView;

int ceil_div(int a, int b) { return (a + b - 1) / b; }

// Packs the logical op(A) block rows [i0, i0+bm) x depth [p0, p0+bk).
void pack_a(ConstMatrixView a, Trans trans, float alpha, int i0, int p0,
            int bm, int bk, float* dst) {
  if (trans == Trans::kNo) {
    kernels::pack_block_scaled(a.block(i0, p0, bm, bk), dst, bk, alpha);
  } else {
    // Logical A(i, p) = stored a(p, i).
    kernels::pack_block_transposed(a.block(p0, i0, bk, bm), dst, bk, alpha);
  }
}

// Packs the logical op(B) block depth [p0, p0+bk) x cols [j0, j0+bn).
void pack_b(ConstMatrixView b, Trans trans, int p0, int j0, int bk, int bn,
            float* dst) {
  if (trans == Trans::kNo) {
    kernels::pack_block(b.block(p0, j0, bk, bn), dst, bn);
  } else {
    kernels::pack_block_transposed(b.block(j0, p0, bn, bk), dst, bn, 1.0f);
  }
}

void run_block(const tiling::TilingResult& tiles, const float* a, long lda,
               const float* b, long ldb, float* c, long ldc, int bk) {
  for (const auto& t : tiles.tiles) {
    kernels::run_tile(t.rows_used, t.cols_used,
                      a + static_cast<long>(t.row) * lda, lda, b + t.col, ldb,
                      c + static_cast<long>(t.row) * ldc + t.col, ldc, bk);
  }
}

// One C block's full K loop (the per-worker unit; this non-canonical path
// always schedules C blocks — the canonical path in core/gemm.cpp is the
// one that can split K).
void c_block_pass(ConstMatrixView a, ConstMatrixView b, MatrixView c,
                  const GemmExParams& params, const Plan& plan, int bi,
                  int bj, float* a_scratch, float* b_scratch) {
  const GemmConfig& cfg = plan.config();
  const int i0 = bi * cfg.mc, j0 = bj * cfg.nc;
  const int bm = std::min(cfg.mc, plan.m() - i0);
  const int bn = std::min(cfg.nc, plan.n() - j0);
  for (int p0 = 0; p0 < plan.k(); p0 += cfg.kc) {
    const int bk = std::min(cfg.kc, plan.k() - p0);
    pack_a(a, params.trans_a, params.alpha, i0, p0, bm, bk, a_scratch);
    pack_b(b, params.trans_b, p0, j0, bk, bn, b_scratch);
    run_block(plan.block_tiling(bm, bn, bk), a_scratch, bk, b_scratch, bn,
              c.data + static_cast<long>(i0) * c.ld + j0, c.ld, bk);
  }
}

}  // namespace

void gemm_ex(ConstMatrixView a, ConstMatrixView b, MatrixView c,
             const GemmExParams& params, const Plan& plan,
             common::ThreadPool* pool) {
  const int a_rows = params.trans_a == Trans::kNo ? a.rows : a.cols;
  const int a_cols = params.trans_a == Trans::kNo ? a.cols : a.rows;
  const int b_rows = params.trans_b == Trans::kNo ? b.rows : b.cols;
  const int b_cols = params.trans_b == Trans::kNo ? b.cols : b.rows;
  if (a_rows != plan.m() || a_cols != plan.k() || b_rows != plan.k() ||
      b_cols != plan.n() || c.rows != plan.m() || c.cols != plan.n())
    throw std::invalid_argument(
        "gemm_ex: operand shapes do not match the plan");

  const GemmConfig& cfg = plan.config();
  const int mi = ceil_div(plan.m(), cfg.mc);
  const int nj = ceil_div(plan.n(), cfg.nc);
  const std::size_t a_size = static_cast<std::size_t>(cfg.mc) * cfg.kc;
  const std::size_t b_size = static_cast<std::size_t>(cfg.kc) * cfg.nc;

  // beta is applied to all of C before any accumulation (doing it inside
  // the workers would race: several column-block workers share C rows).
  if (params.beta != 1.0f) detail::scale_c(c, params.beta);

  if (pool != nullptr && pool->size() > 1) {
    pool->parallel_for(mi * nj, [&](int block) {
      const int bi = block / nj;
      const int bj = block % nj;
      common::AlignedBuffer a_buf(a_size), b_buf(b_size);
      c_block_pass(a, b, c, params, plan, bi, bj, a_buf.data(), b_buf.data());
    });
  } else {
    common::AlignedBuffer a_buf(a_size), b_buf(b_size);
    for (int bi = 0; bi < mi; ++bi)
      for (int bj = 0; bj < nj; ++bj)
        c_block_pass(a, b, c, params, plan, bi, bj, a_buf.data(),
                     b_buf.data());
  }
}

void gemm_ex(ConstMatrixView a, ConstMatrixView b, MatrixView c,
             const GemmExParams& params) {
  default_context().gemm(a, b, c, params);
}

namespace {

Trans parse_trans(char t) {
  switch (t) {
    case 'n': case 'N': return Trans::kNo;
    case 't': case 'T': return Trans::kYes;
    default:
      throw std::invalid_argument(std::string("sgemm: bad trans flag '") + t +
                                  "' (expected n/N/t/T)");
  }
}

}  // namespace

void sgemm(char transa, char transb, int m, int n, int k, float alpha,
           const float* a, int lda, const float* b, int ldb, float beta,
           float* c, int ldc) {
  GemmExParams params;
  params.trans_a = parse_trans(transa);
  params.trans_b = parse_trans(transb);
  params.alpha = alpha;
  params.beta = beta;
  const int a_rows = params.trans_a == Trans::kNo ? m : k;
  const int a_cols = params.trans_a == Trans::kNo ? k : m;
  const int b_rows = params.trans_b == Trans::kNo ? k : n;
  const int b_cols = params.trans_b == Trans::kNo ? n : k;
  if (lda < a_cols || ldb < b_cols || ldc < n)
    throw std::invalid_argument("sgemm: leading dimension below row width");
  const ConstMatrixView av{a, a_rows, a_cols, lda};
  const ConstMatrixView bv{b, b_rows, b_cols, ldb};
  const MatrixView cv{c, m, n, ldc};
  default_context().gemm(av, bv, cv, params);
}

namespace detail {

void scale_c(MatrixView c, float beta) {
  for (int r = 0; r < c.rows; ++r) {
    float* row = c.data + static_cast<long>(r) * c.ld;
    if (beta == 0.0f) {
      for (int j = 0; j < c.cols; ++j) row[j] = 0.0f;
    } else {
      for (int j = 0; j < c.cols; ++j) row[j] *= beta;
    }
  }
}

}  // namespace detail

}  // namespace autogemm

