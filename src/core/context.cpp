#include "core/context.hpp"

#include <stdexcept>
#include <utility>

namespace autogemm {

namespace {

tune::TuningRecords load_records_or_throw(const std::string& path) {
  tune::TuningRecords records;
  if (!path.empty() && !records.load_file(path))
    throw std::runtime_error("Context: cannot read records file: " + path);
  return records;
}

ContextOptions sanitized(ContextOptions opts) {
  if (opts.plan_capacity == 0) opts.plan_capacity = 1;
  if (opts.packed_capacity == 0) opts.packed_capacity = 1;
  return opts;
}

}  // namespace

Context::Context() : Context(ContextOptions{}) {}

Context::Context(const ContextOptions& opts)
    : opts_(sanitized(opts)), records_(load_records_or_throw(opts.records_path)) {}

Context::Context(const std::string& records_path)
    : Context(ContextOptions{.records_path = records_path}) {}

Context::Context(tune::TuningRecords records, const ContextOptions& opts)
    : opts_(sanitized(opts)), records_(std::move(records)) {}

Context::~Context() = default;

common::ThreadPool* Context::pool() {
  if (opts_.threads == 1) return nullptr;
  std::call_once(pool_once_, [this] {
    pool_ = std::make_unique<common::ThreadPool>(opts_.threads);
  });
  return pool_.get();
}

GemmConfig Context::resolve_config(int m, int n, int k) {
  const tune::ShapeKey shape{m, n, k};
  if (auto exact = records_.lookup(shape)) {
    {
      std::lock_guard lock(mu_);
      ++stats_.resolved_exact;
    }
    return tune::config_from_candidate(m, n, k, *exact);
  }
  if (auto nearest = records_.lookup_nearest(shape)) {
    {
      std::lock_guard lock(mu_);
      ++stats_.resolved_nearest;
    }
    // Plan construction clamps the transferred blocking to this problem.
    return tune::config_from_candidate(m, n, k, *nearest);
  }
  {
    std::lock_guard lock(mu_);
    ++stats_.resolved_heuristic;
  }
  return default_config(m, n, k);
}

std::shared_ptr<const Plan> Context::plan_for(int m, int n, int k) {
  const ShapeKey key{m, n, k};
  {
    std::lock_guard lock(mu_);
    auto it = plan_index_.find(key);
    if (it != plan_index_.end()) {
      ++stats_.plan_hits;
      plan_lru_.splice(plan_lru_.begin(), plan_lru_, it->second);
      return it->second->second;
    }
    ++stats_.plan_misses;
  }
  // Plan construction (DMT + model costing) runs outside the lock so
  // concurrent misses on distinct shapes don't serialize; a racing build
  // of the same shape is deterministic, so first-in wins and the loser's
  // copy is dropped.
  auto plan = std::make_shared<const Plan>(m, n, k, resolve_config(m, n, k));
  std::lock_guard lock(mu_);
  auto it = plan_index_.find(key);
  if (it != plan_index_.end()) {
    plan_lru_.splice(plan_lru_.begin(), plan_lru_, it->second);
    return it->second->second;
  }
  plan_lru_.emplace_front(key, std::move(plan));
  plan_index_[key] = plan_lru_.begin();
  while (plan_lru_.size() > opts_.plan_capacity) {
    plan_index_.erase(plan_lru_.back().first);
    plan_lru_.pop_back();
    ++stats_.plan_evictions;
  }
  return plan_lru_.front().second;
}

std::shared_ptr<const PackedA> Context::packed_a_for(
    common::ConstMatrixView a, const std::shared_ptr<const Plan>& plan) {
  const PackedKey key{a.data, a.rows, a.cols, a.ld, /*is_a=*/true};
  {
    std::lock_guard lock(mu_);
    auto it = packed_index_.find(key);
    if (it != packed_index_.end()) {
      ++stats_.packed_hits;
      packed_lru_.splice(packed_lru_.begin(), packed_lru_, it->second);
      return it->second->second.a;
    }
    ++stats_.packed_misses;
  }
  auto packed = std::make_shared<const PackedA>(a, *plan);
  std::lock_guard lock(mu_);
  auto it = packed_index_.find(key);
  if (it != packed_index_.end()) {
    packed_lru_.splice(packed_lru_.begin(), packed_lru_, it->second);
    return it->second->second.a;
  }
  packed_lru_.emplace_front(key, PackedEntry{std::move(packed), nullptr, plan});
  packed_index_[key] = packed_lru_.begin();
  while (packed_lru_.size() > opts_.packed_capacity) {
    packed_index_.erase(packed_lru_.back().first);
    packed_lru_.pop_back();
    ++stats_.packed_evictions;
  }
  return packed_lru_.front().second.a;
}

std::shared_ptr<const PackedB> Context::packed_b_for(
    common::ConstMatrixView b, const std::shared_ptr<const Plan>& plan) {
  const PackedKey key{b.data, b.rows, b.cols, b.ld, /*is_a=*/false};
  {
    std::lock_guard lock(mu_);
    auto it = packed_index_.find(key);
    if (it != packed_index_.end()) {
      ++stats_.packed_hits;
      packed_lru_.splice(packed_lru_.begin(), packed_lru_, it->second);
      return it->second->second.b;
    }
    ++stats_.packed_misses;
  }
  auto packed = std::make_shared<const PackedB>(b, *plan);
  std::lock_guard lock(mu_);
  auto it = packed_index_.find(key);
  if (it != packed_index_.end()) {
    packed_lru_.splice(packed_lru_.begin(), packed_lru_, it->second);
    return it->second->second.b;
  }
  packed_lru_.emplace_front(key, PackedEntry{nullptr, std::move(packed), plan});
  packed_index_[key] = packed_lru_.begin();
  while (packed_lru_.size() > opts_.packed_capacity) {
    packed_index_.erase(packed_lru_.back().first);
    packed_lru_.pop_back();
    ++stats_.packed_evictions;
  }
  return packed_lru_.front().second.b;
}

void Context::gemm(common::ConstMatrixView a, common::ConstMatrixView b,
                   common::MatrixView c, const GemmExParams& params) {
  const int m = params.trans_a == Trans::kNo ? a.rows : a.cols;
  const int k = params.trans_a == Trans::kNo ? a.cols : a.rows;
  const int n = params.trans_b == Trans::kNo ? b.cols : b.rows;
  auto plan = plan_for(m, n, k);
  if (params.trans_a == Trans::kNo && params.trans_b == Trans::kNo &&
      params.alpha == 1.0f) {
    // Canonical operands: beta applied up front, then the accumulate
    // executor (avoids gemm_ex's forced re-packing of both operands).
    if (params.beta != 1.0f) detail::scale_c(c, params.beta);
    autogemm::gemm(a, b, c, *plan, pool());
  } else {
    gemm_ex(a, b, c, params, *plan, pool());
  }
}

void Context::gemm_const_a(common::ConstMatrixView a, common::ConstMatrixView b,
                           common::MatrixView c, const GemmExParams& params) {
  if (params.trans_a != Trans::kNo || params.trans_b != Trans::kNo ||
      params.alpha != 1.0f) {
    gemm(a, b, c, params);  // cached packing needs canonical, unscaled A
    return;
  }
  auto plan = plan_for(a.rows, b.cols, a.cols);
  auto packed = packed_a_for(a, plan);
  if (params.beta != 1.0f) detail::scale_c(c, params.beta);
  autogemm::gemm(*packed, a, b, c, *plan, pool());
}

void Context::gemm_const_b(common::ConstMatrixView a, common::ConstMatrixView b,
                           common::MatrixView c, const GemmExParams& params) {
  if (params.trans_a != Trans::kNo || params.trans_b != Trans::kNo ||
      params.alpha != 1.0f) {
    gemm(a, b, c, params);
    return;
  }
  auto plan = plan_for(a.rows, b.cols, a.cols);
  auto packed = packed_b_for(b, plan);
  if (params.beta != 1.0f) detail::scale_c(c, params.beta);
  autogemm::gemm(a, *packed, b, c, *plan, pool());
}

void Context::gemm_batched(const std::vector<BatchItem>& items) {
  if (items.empty()) return;
  // Resolve every distinct shape's plan up front (workers must only read).
  std::map<ShapeKey, std::shared_ptr<const Plan>> plans;
  for (const auto& item : items) {
    const ShapeKey key{item.a.rows, item.b.cols, item.a.cols};
    if (!plans.count(key)) plans.emplace(key, plan_for(key.m, key.n, key.k));
  }
  const auto run_item = [&](const BatchItem& item) {
    const ShapeKey key{item.a.rows, item.b.cols, item.a.cols};
    autogemm::gemm(item.a, item.b, item.c, *plans.at(key), nullptr);
  };
  common::ThreadPool* p = pool();
  if (p != nullptr && p->size() > 1) {
    p->parallel_for(static_cast<int>(items.size()),
                    [&](int i) { run_item(items[i]); });
  } else {
    for (const auto& item : items) run_item(item);
  }
}

std::size_t Context::invalidate(const void* data) {
  std::lock_guard lock(mu_);
  std::size_t dropped = 0;
  for (auto it = packed_lru_.begin(); it != packed_lru_.end();) {
    if (it->first.data == data) {
      packed_index_.erase(it->first);
      it = packed_lru_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  stats_.packed_invalidations += dropped;
  return dropped;
}

void Context::clear() {
  std::lock_guard lock(mu_);
  plan_index_.clear();
  plan_lru_.clear();
  packed_index_.clear();
  packed_lru_.clear();
}

ContextStats Context::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

std::size_t Context::plan_cache_size() const {
  std::lock_guard lock(mu_);
  return plan_lru_.size();
}

std::size_t Context::packed_cache_size() const {
  std::lock_guard lock(mu_);
  return packed_lru_.size();
}

Context& default_context() {
  // Serial so the free-function wrappers behave exactly like the
  // pre-Context API (plan caching aside, which they already had).
  static Context ctx([] {
    ContextOptions opts;
    opts.threads = 1;
    return opts;
  }());
  return ctx;
}

}  // namespace autogemm
