#include "core/context.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include "backend/backend.hpp"
#include "codegen/generator.hpp"
#include "common/failpoint.hpp"
#include "common/reference_gemm.hpp"
#include "common/timer.hpp"
#include "kernels/dispatch.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "quant/qgemm.hpp"
#include "quant/qpacked.hpp"
#include "sim/interpreter.hpp"
#include "sim/pipeline.hpp"

namespace autogemm {

namespace {

using common::ConstMatrixView;
using common::MatrixView;

constexpr std::size_t kMaxHealthEvents = 64;

tune::TuningRecords load_records_or_throw(const std::string& path,
                                          std::uint64_t* skipped) {
  tune::TuningRecords records;
  if (path.empty()) return records;
  tune::TuningRecords::LoadReport report;
  const Status s = records.load_file(path, &report);
  // kDataLoss means valid records were salvaged around corrupt lines —
  // that is a degraded load (reported through health()), not a dead
  // context. Anything else (unreadable file, unknown format version)
  // leaves nothing usable, so the constructor contract stays throwing.
  if (!s.ok() && s.code() != StatusCode::kDataLoss)
    throw std::runtime_error("Context: cannot read records file: " + path +
                             " (" + s.to_string() + ")");
  *skipped = report.skipped;
  return records;
}

ContextOptions sanitized(ContextOptions opts) {
  if (opts.plan_capacity == 0) opts.plan_capacity = 1;
  if (opts.packed_capacity == 0) opts.packed_capacity = 1;
  if (opts.probe_kc < 1) opts.probe_kc = 1;
  return opts;
}

Status check_view(ConstMatrixView v, const char* who) {
  if (v.rows < 0 || v.cols < 0)
    return InvalidArgumentError(std::string(who) + ": negative dimension");
  if (v.data == nullptr && v.rows > 0 && v.cols > 0)
    return InvalidArgumentError(std::string(who) +
                                ": null data pointer with nonzero extent");
  if (v.rows > 1 && v.ld < v.cols)
    return InvalidArgumentError(std::string(who) +
                                ": leading dimension below row width");
  return Status::OK();
}

/// Full operand validation for one C = alpha*op(A)*op(B) + beta*C call.
/// Nothing is written to C before this passes.
Status validate_call(ConstMatrixView a, ConstMatrixView b, MatrixView c,
                     const GemmExParams& params) {
  if (!std::isfinite(params.alpha) || !std::isfinite(params.beta))
    return InvalidArgumentError(
        "gemm: non-finite alpha/beta would poison all of C (matrix contents "
        "are never scanned; scalar parameters are — see common/status.hpp)");
  AUTOGEMM_RETURN_IF_ERROR(check_view(a, "A"));
  AUTOGEMM_RETURN_IF_ERROR(check_view(b, "B"));
  AUTOGEMM_RETURN_IF_ERROR(check_view(ConstMatrixView(c), "C"));
  const int m = params.trans_a == Trans::kNo ? a.rows : a.cols;
  const int ka = params.trans_a == Trans::kNo ? a.cols : a.rows;
  const int kb = params.trans_b == Trans::kNo ? b.rows : b.cols;
  const int n = params.trans_b == Trans::kNo ? b.cols : b.rows;
  if (ka != kb)
    return InvalidArgumentError("gemm: inner dimensions disagree (op(A) is " +
                                std::to_string(m) + "x" + std::to_string(ka) +
                                ", op(B) is " + std::to_string(kb) + "x" +
                                std::to_string(n) + ")");
  if (c.rows != m || c.cols != n)
    return InvalidArgumentError(
        "gemm: C is " + std::to_string(c.rows) + "x" + std::to_string(c.cols) +
        " but op(A)*op(B) is " + std::to_string(m) + "x" + std::to_string(n));
  if (c.data != nullptr && (c.data == a.data || c.data == b.data))
    return InvalidArgumentError(
        "gemm: C aliases an input operand (in-place GEMM is not supported; "
        "only exact pointer identity is checked)");
  return Status::OK();
}

/// C += alpha * op(A) * op(B), double accumulation — the bottom tier of the
/// degradation ladder. beta must already be applied to C. Allocates
/// nothing and touches only the caller's buffers, so it cannot itself
/// fault.
void accumulate_reference(ConstMatrixView a, ConstMatrixView b, MatrixView c,
                          const GemmExParams& params) {
  const bool ta = params.trans_a == Trans::kYes;
  const bool tb = params.trans_b == Trans::kYes;
  const int k = ta ? a.rows : a.cols;
  for (int i = 0; i < c.rows; ++i) {
    for (int j = 0; j < c.cols; ++j) {
      double acc = 0;
      for (int p = 0; p < k; ++p) {
        const float av = ta ? a.at(p, i) : a.at(i, p);
        const float bv = tb ? b.at(j, p) : b.at(p, j);
        acc += static_cast<double>(av) * bv;
      }
      c.at(i, j) = static_cast<float>(c.at(i, j) + params.alpha * acc);
    }
  }
}

/// Deterministic small-magnitude fill for probe operands.
void fill_probe(std::vector<float>& buf, unsigned seed) {
  unsigned s = seed * 2654435761u + 1u;
  for (auto& x : buf) {
    s = s * 1664525u + 1013904223u;
    x = static_cast<float>((s >> 8) & 0xFFFF) / 65536.0f - 0.5f;
  }
}

/// Probes the *generated-kernel* path: emit the (mr x nr, kc) micro-kernel
/// as isa::Program and execute it on the watchdogged interpreter against
/// real buffers, comparing with the reference GEMM. This is the check the
/// paper performs against other BLAS libraries at generation time, moved
/// to first use so a config transferred from another machine is vetted on
/// the machine that will trust it.
Status probe_generated(int mr, int nr, int kc, int lanes, long max_steps) {
  codegen::MicroKernel mk;
  try {
    codegen::GeneratorOptions gopts;
    gopts.rotate_registers = true;  // the shipped kernels always rotate
    mk = codegen::generate_microkernel(mr, nr, kc, lanes, gopts);
  } catch (const std::exception& e) {
    return InternalError(std::string("probe: codegen failed for ") +
                         std::to_string(mr) + "x" + std::to_string(nr) + ": " +
                         e.what());
  }
  // The generated stream over-reads like real packed kernels; honor its
  // padding contract.
  const int ka = codegen::padded_k_a(kc, lanes);
  const int kb = codegen::padded_k_b(kc, lanes);
  std::vector<float> a(static_cast<std::size_t>(mr) * ka);
  std::vector<float> b(static_cast<std::size_t>(kb) * nr);
  std::vector<float> c(static_cast<std::size_t>(mr) * nr, 0.0f);
  std::vector<float> c_ref(c.size(), 0.0f);
  fill_probe(a, 11);
  fill_probe(b, 23);

  sim::Interpreter interp(max_steps);
  sim::KernelArgs args;
  args.a = a.data();
  args.b = b.data();
  args.c = c.data();
  args.lda = ka;
  args.ldb = nr;
  args.ldc = nr;
  AUTOGEMM_RETURN_IF_ERROR(interp.try_run(mk.program, args));

  common::reference_gemm(ConstMatrixView{a.data(), mr, kc, ka},
                         ConstMatrixView{b.data(), kc, nr, nr},
                         MatrixView{c_ref.data(), mr, nr, nr});
  const float tol = 1e-4f * static_cast<float>(kc);
  for (std::size_t i = 0; i < c.size(); ++i) {
    const float diff = std::fabs(c[i] - c_ref[i]);
    if (!(diff <= tol))  // negated comparison so NaN fails too
      return InternalError("probe: generated " + std::to_string(mr) + "x" +
                           std::to_string(nr) +
                           " kernel diverges from reference (|diff| = " +
                           std::to_string(diff) + ")");
  }
  return Status::OK();
}

/// Probes a vector-length-agnostic backend (today: sve_sim): the backend
/// emits its predicated micro-kernel for the tile and the interpreter
/// executes it at the backend's default VL against exact-size buffers —
/// predication means no over-read, so there is no padding contract to
/// honor. This is the only way an SVE instruction stream is vetted on an
/// x86 host: the silicon path (find_microkernel) does not exist for it.
Status probe_generated_vla(const backend::KernelBackend& be, int mr, int nr,
                           int kc, long max_steps) {
  codegen::MicroKernel mk;
  try {
    codegen::GeneratorOptions gopts;
    gopts.rotate_registers = true;
    mk = be.generate(mr, nr, kc, gopts);
  } catch (const std::exception& e) {
    return InternalError(std::string("probe: codegen failed for ") +
                         std::to_string(mr) + "x" + std::to_string(nr) + ": " +
                         e.what());
  }
  std::vector<float> a(static_cast<std::size_t>(mr) * kc);
  std::vector<float> b(static_cast<std::size_t>(kc) * nr);
  std::vector<float> c(static_cast<std::size_t>(mr) * nr, 0.0f);
  std::vector<float> c_ref(c.size(), 0.0f);
  fill_probe(a, 11);
  fill_probe(b, 23);

  sim::Interpreter interp(max_steps);
  interp.set_vector_length(be.caps().vl_default);
  sim::KernelArgs args;
  args.a = a.data();
  args.b = b.data();
  args.c = c.data();
  args.lda = kc;
  args.ldb = nr;
  args.ldc = nr;
  AUTOGEMM_RETURN_IF_ERROR(interp.try_run(mk.program, args));

  common::reference_gemm(ConstMatrixView{a.data(), mr, kc, kc},
                         ConstMatrixView{b.data(), kc, nr, nr},
                         MatrixView{c_ref.data(), mr, nr, nr});
  const float tol = 1e-4f * static_cast<float>(kc);
  for (std::size_t i = 0; i < c.size(); ++i) {
    const float diff = std::fabs(c[i] - c_ref[i]);
    if (!(diff <= tol))
      return InternalError("probe: generated " + std::to_string(mr) + "x" +
                           std::to_string(nr) + " " +
                           std::string(backend_name(be.caps().id)) +
                           " kernel diverges from reference (|diff| = " +
                           std::to_string(diff) + ")");
  }
  return Status::OK();
}

/// Probes the portable kernels:: path (the one Context actually executes
/// through) for the same tile shape.
Status probe_portable(int mr, int nr, int kc) {
  std::vector<float> a(static_cast<std::size_t>(mr) * kc);
  std::vector<float> b(static_cast<std::size_t>(kc) * nr);
  std::vector<float> c(static_cast<std::size_t>(mr) * nr, 0.0f);
  std::vector<float> c_ref(c.size(), 0.0f);
  fill_probe(a, 31);
  fill_probe(b, 47);
  kernels::run_tile(mr, nr, a.data(), kc, b.data(), nr, c.data(), nr, kc);
  common::reference_gemm(ConstMatrixView{a.data(), mr, kc, kc},
                         ConstMatrixView{b.data(), kc, nr, nr},
                         MatrixView{c_ref.data(), mr, nr, nr});
  const float tol = 1e-4f * static_cast<float>(kc);
  for (std::size_t i = 0; i < c.size(); ++i) {
    const float diff = std::fabs(c[i] - c_ref[i]);
    if (!(diff <= tol))
      return InternalError("probe: portable " + std::to_string(mr) + "x" +
                           std::to_string(nr) +
                           " kernel diverges from reference (|diff| = " +
                           std::to_string(diff) + ")");
  }
  return Status::OK();
}

std::string shape_string(int m, int n, int k) {
  return std::to_string(m) + "x" + std::to_string(n) + "x" + std::to_string(k);
}

std::string config_string(const GemmConfig& cfg) {
  return "{mc=" + std::to_string(cfg.mc) + " nc=" + std::to_string(cfg.nc) +
         " kc=" + std::to_string(cfg.kc) + " order=" +
         loop_order_name(cfg.loop_order) + "}";
}

/// Process-wide registry handles, resolved once. Per-context snapshots stay
/// on stats_/health_ (tests depend on counts-from-zero per context); these
/// aggregate the same events across every context in the process.
struct ObsHandles {
  obs::Counter* calls;
  obs::Counter* failures;
  obs::Counter* flops;
  obs::Counter* plan_hits;
  obs::Counter* plan_misses;
  obs::Counter* plan_evictions;
  obs::Counter* packed_hits;
  obs::Counter* packed_misses;
  obs::Counter* packed_evictions;
  obs::Counter* packed_invalidations;
  obs::Counter* plan_invalidations;
  obs::Counter* resolved_exact;
  obs::Counter* resolved_nearest;
  obs::Counter* resolved_heuristic;
  obs::Counter* strategy_serial;
  obs::Counter* strategy_blocks;
  obs::Counter* strategy_ksplit;
  obs::Counter* probes;
  obs::Counter* probe_failures;
  obs::Histogram* gemm_seconds;
};

ObsHandles& obs_handles() {
  static ObsHandles h = [] {
    obs::Registry& r = obs::default_registry();
    ObsHandles x;
    x.calls = &r.counter("autogemm_gemm_calls_total");
    x.failures = &r.counter("autogemm_gemm_failures_total");
    x.flops = &r.counter("autogemm_gemm_flops_total");
    x.plan_hits = &r.counter("autogemm_plan_cache_hits_total");
    x.plan_misses = &r.counter("autogemm_plan_cache_misses_total");
    x.plan_evictions = &r.counter("autogemm_plan_cache_evictions_total");
    x.packed_hits = &r.counter("autogemm_packed_cache_hits_total");
    x.packed_misses = &r.counter("autogemm_packed_cache_misses_total");
    x.packed_evictions = &r.counter("autogemm_packed_cache_evictions_total");
    x.packed_invalidations =
        &r.counter("autogemm_packed_cache_invalidations_total");
    x.plan_invalidations =
        &r.counter("autogemm_plan_cache_invalidations_total");
    x.resolved_exact =
        &r.counter("autogemm_plan_resolved_total{source=\"exact\"}");
    x.resolved_nearest =
        &r.counter("autogemm_plan_resolved_total{source=\"nearest\"}");
    x.resolved_heuristic =
        &r.counter("autogemm_plan_resolved_total{source=\"heuristic\"}");
    x.strategy_serial =
        &r.counter("autogemm_strategy_total{strategy=\"serial\"}");
    x.strategy_blocks =
        &r.counter("autogemm_strategy_total{strategy=\"blocks\"}");
    x.strategy_ksplit =
        &r.counter("autogemm_strategy_total{strategy=\"ksplit\"}");
    x.probes = &r.counter("autogemm_verify_probes_total");
    x.probe_failures = &r.counter("autogemm_verify_probe_failures_total");
    x.gemm_seconds = &r.histogram("autogemm_gemm_seconds");
    return x;
  }();
  return h;
}

/// Backend-labeled series, alongside (never instead of) the unlabeled
/// legacy counters above: autogemm_backend_dispatch_total{backend=...}
/// counts every plan-driven execution a context dispatches under a
/// backend, and the strategy/probe counters gain backend-labeled twins so
/// NEON and simulated-SVE traffic is separable in one process.
struct BackendObs {
  obs::Counter* dispatch;
  obs::Counter* probes;
  obs::Counter* strategy_serial;
  obs::Counter* strategy_blocks;
  obs::Counter* strategy_ksplit;
};

const BackendObs& backend_obs(backend::BackendId id) {
  static std::mutex mu;
  static std::map<backend::BackendId, BackendObs>& cache =
      *new std::map<backend::BackendId, BackendObs>;
  std::lock_guard lock(mu);
  auto it = cache.find(id);
  if (it == cache.end()) {
    obs::Registry& r = obs::default_registry();
    const std::string bn(backend_name(id));
    BackendObs x;
    x.dispatch =
        &r.counter("autogemm_backend_dispatch_total{backend=\"" + bn + "\"}");
    x.probes =
        &r.counter("autogemm_verify_probes_total{backend=\"" + bn + "\"}");
    x.strategy_serial = &r.counter(
        "autogemm_strategy_total{strategy=\"serial\",backend=\"" + bn + "\"}");
    x.strategy_blocks = &r.counter(
        "autogemm_strategy_total{strategy=\"blocks\",backend=\"" + bn + "\"}");
    x.strategy_ksplit = &r.counter(
        "autogemm_strategy_total{strategy=\"ksplit\",backend=\"" + bn + "\"}");
    it = cache.emplace(id, x).first;
  }
  return it->second;
}

const char* health_kind_name(HealthEvent::Kind kind) {
  switch (kind) {
    case HealthEvent::Kind::kQuarantine: return "quarantine";
    case HealthEvent::Kind::kReferenceFallback: return "reference_fallback";
    case HealthEvent::Kind::kAllocFallback: return "alloc_fallback";
    case HealthEvent::Kind::kPoolDegraded: return "pool_degraded";
    case HealthEvent::Kind::kRecordsDamaged: return "records_damaged";
  }
  return "unknown";
}

/// Cardinality cap for the per-shape latency series (see the
/// set_shape_label_cap contract in context.hpp): labels go to the first
/// `cap` distinct shapes, first-come-first-served; later shapes share
/// "other" so an adversarial shape stream cannot grow the registry without
/// bound. The unlabeled autogemm_gemm_seconds histogram always sees every
/// call. AUTOGEMM_SHAPE_LABEL_CAP overrides the default of 128.
std::atomic<std::size_t>& shape_label_cap_storage() {
  static std::atomic<std::size_t> cap{[]() -> std::size_t {
    if (const char* env = std::getenv("AUTOGEMM_SHAPE_LABEL_CAP")) {
      char* end = nullptr;
      const unsigned long v = std::strtoul(env, &end, 10);
      if (end != env && *end == '\0') return static_cast<std::size_t>(v);
    }
    return 128;
  }()};
  return cap;
}

/// One FCFS label set shared by the shape-only series and the dtype twins:
/// the cap bounds the union, and a shape capped to "other" aggregates under
/// "other" in every dtype series too (no family can leak past the cap).
std::string capped_shape_label(int m, int n, int k) {
  static std::mutex mu;
  static std::set<std::string>& seen = *new std::set<std::string>;
  std::string label = shape_string(m, n, k);
  std::lock_guard lock(mu);
  if (seen.count(label) == 0) {
    if (seen.size() >= shape_label_cap_storage().load()) label = "other";
    else seen.insert(label);
  }
  return label;
}

obs::Histogram& shape_latency_histogram(int m, int n, int k) {
  return obs::default_registry().histogram(
      "autogemm_gemm_seconds{shape=\"" + capped_shape_label(m, n, k) + "\"}");
}

/// Dtype-labeled twin, alongside (never instead of) the legacy shape-only
/// series: autogemm_gemm_seconds{shape=...,dtype=...} separates fp32 and
/// int8 latency for one shape in one process — the serving dashboards'
/// per-tier view.
obs::Histogram& shape_dtype_latency_histogram(int m, int n, int k,
                                              common::DType dtype) {
  return obs::default_registry().histogram(
      "autogemm_gemm_seconds{shape=\"" + capped_shape_label(m, n, k) +
      "\",dtype=\"" + common::dtype_name(dtype) + "\"}");
}

/// Cached per-shape histogram pointers for the quantized path (registry
/// entries are stable for the registry's lifetime, so caching is safe).
/// Keyed by the *capped* label, so the cache is bounded by the shape-label
/// cap plus the "other" slot even under an adversarial shape stream.
struct QuantShapeObs {
  obs::Histogram* latency = nullptr;        // legacy shape-only series
  obs::Histogram* latency_dtype = nullptr;  // {shape=...,dtype="i8"} twin
};

const QuantShapeObs& quant_shape_obs(int m, int n, int k) {
  static std::mutex mu;
  static std::map<std::string, QuantShapeObs>& cache =
      *new std::map<std::string, QuantShapeObs>;
  const std::string label = capped_shape_label(m, n, k);
  std::lock_guard lock(mu);
  auto [it, inserted] = cache.try_emplace(label);
  if (inserted) {
    obs::Registry& r = obs::default_registry();
    it->second.latency =
        &r.histogram("autogemm_gemm_seconds{shape=\"" + label + "\"}");
    it->second.latency_dtype = &r.histogram(
        "autogemm_gemm_seconds{shape=\"" + label + "\",dtype=\"" +
        common::dtype_name(common::DType::kI8) + "\"}");
  }
  return it->second;
}

/// Per-thread last_error slots, keyed by context id. Thread-local (not
/// guarded by mu_) so concurrent run* calls on different threads cannot
/// clobber each other's error between a failing call and the query. Each
/// thread's map registers itself in a process-wide registry so ~Context
/// can sweep its id out of every live thread's map — without the sweep, a
/// long-lived thread that churns contexts grows its map without bound
/// (one dead slot per destroyed context that ever failed on it). The
/// per-map mutex is only contended by that sweep; a thread's own
/// reads/writes of its map are otherwise uncontended.
///
/// Lock order: registry mutex before any map mutex. Threads touching only
/// their own map take just that map's mutex, so the sweep cannot deadlock
/// with normal operation. Both registry statics are leaked on purpose:
/// threads may still deregister during process teardown.
struct ThreadErrorMap {
  std::mutex mu;
  std::map<std::uint64_t, Status> errors;
};

std::mutex& thread_error_registry_mu() {
  static std::mutex& mu = *new std::mutex;
  return mu;
}

std::set<ThreadErrorMap*>& thread_error_registry() {
  static std::set<ThreadErrorMap*>& reg = *new std::set<ThreadErrorMap*>;
  return reg;
}

ThreadErrorMap& thread_errors() {
  struct Holder {
    ThreadErrorMap map;
    Holder() {
      std::lock_guard lock(thread_error_registry_mu());
      thread_error_registry().insert(&map);
    }
    ~Holder() {
      std::lock_guard lock(thread_error_registry_mu());
      thread_error_registry().erase(&map);
    }
  };
  static thread_local Holder holder;
  return holder.map;
}

}  // namespace

std::uint64_t Context::next_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

Context::Context() : Context(ContextOptions{}) {}

Context::Context(const ContextOptions& opts)
    : opts_(sanitized(opts)),
      backend_(backend::resolve_backend(opts.backend)),
      records_(load_records_or_throw(opts.records_path, &records_skipped_)) {
  if (opts_.trace) obs::set_trace_enabled(true);
  if (records_skipped_ > 0) {
    health_.records_skipped = records_skipped_;
    record_event(HealthEvent::Kind::kRecordsDamaged,
                 "records file '" + opts_.records_path + "': skipped " +
                     std::to_string(records_skipped_) + " corrupt line(s)");
  }
}

Context::Context(const std::string& records_path)
    : Context(ContextOptions{.records_path = records_path}) {}

Context::Context(tune::TuningRecords records, const ContextOptions& opts)
    : opts_(sanitized(opts)),
      backend_(backend::resolve_backend(opts.backend)),
      records_(std::move(records)) {
  if (opts_.trace) obs::set_trace_enabled(true);
}

Context::~Context() {
  // Sweep this context's id out of every live thread's last_error slots:
  // without this, threads that outlive a churn of contexts accumulate one
  // dead Status per destroyed context forever.
  std::lock_guard reg_lock(thread_error_registry_mu());
  for (ThreadErrorMap* m : thread_error_registry()) {
    std::lock_guard lock(m->mu);
    m->errors.erase(id_);
  }
}

std::size_t Context::thread_error_slots() {
  std::lock_guard reg_lock(thread_error_registry_mu());
  std::size_t total = 0;
  for (ThreadErrorMap* m : thread_error_registry()) {
    std::lock_guard lock(m->mu);
    total += m->errors.size();
  }
  return total;
}

common::ThreadPool* Context::effective_pool() {
  if (opts_.threads == 1) return nullptr;
  if (pool_degraded_.load(std::memory_order_relaxed)) return nullptr;
  std::call_once(pool_once_, [this] {
    auto p =
        std::make_unique<common::ThreadPool>(opts_.threads, opts_.pool_pin_cpus);
    if (p->spawn_failures() > 0) {
      record_event(HealthEvent::Kind::kPoolDegraded,
                   "thread pool spawned " + std::to_string(p->size()) + " of " +
                       std::to_string(p->size() + p->spawn_failures()) +
                       " workers");
      // Zero workers: parallel_for would run inline anyway, but mark the
      // pool retired so health() tells the truth.
      if (p->size() == 0) pool_degraded_.store(true);
    }
    pool_ = std::move(p);
  });
  if (pool_degraded_.load(std::memory_order_relaxed)) return nullptr;
  return pool_.get();
}

common::ThreadPool* Context::pool() { return effective_pool(); }

void Context::record_event(HealthEvent::Kind kind, std::string detail) {
  // Degradation events are rare; the registry lookup's lock is fine here.
  obs::default_registry()
      .counter(std::string("autogemm_health_events_total{kind=\"") +
               health_kind_name(kind) + "\"}")
      .add(1);
  std::lock_guard lock(mu_);
  health_.degraded = true;
  if (health_.events.size() >= kMaxHealthEvents)
    health_.events.erase(health_.events.begin());
  health_.events.push_back(HealthEvent{kind, std::move(detail)});
}

Status Context::record_error(Status s) {
  if (!s.ok()) {
    obs_handles().failures->add(1);
    ThreadErrorMap& tm = thread_errors();
    {
      std::lock_guard lock(tm.mu);
      tm.errors[id_] = s;
    }
    std::lock_guard lock(mu_);
    health_.last_error = s;
  }
  return s;
}

Status Context::verify_config(const Plan& plan) {
  obs::SpanScope span("verify.probe",
                      static_cast<std::uint64_t>(plan.m()),
                      static_cast<std::uint64_t>(plan.n()));
  obs_handles().probes->add(1);
  const GemmConfig& cfg = plan.config();
  backend_obs(cfg.backend).probes->add(1);
  {
    std::lock_guard lock(mu_);
    ++health_.probes;
  }
  const int lanes = std::max(1, cfg.hw.lanes);
  const int bm = std::min(cfg.mc, plan.m());
  const int bn = std::min(cfg.nc, plan.n());
  const int bk = std::min(cfg.kc, plan.k());
  const int kc = std::max(1, std::min(bk, opts_.probe_kc));
  const tiling::TilingResult& tiles = plan.block_tiling(bm, bn, bk);
  if (tiles.tiles.empty())
    return InternalError("probe: tiling produced no tiles for block " +
                         shape_string(bm, bn, bk));

  // Representative vector tile for the generated-kernel probe (the scalar
  // edge kernels have no padding contract; the vector main tiles are what
  // the generated library actually ships). Fixed-width backends (NEON)
  // need a lane-multiple tile, exactly as before the registry; a
  // VL-agnostic backend predicates the column edge, so any tile it deems
  // feasible — lane multiple or not — is probeable.
  if (failpoint::should_fail("verify.generated"))
    return InternalError("failpoint: verify.generated");
  const backend::KernelBackend& be = backend::get_backend(cfg.backend);
  const bool vla = be.caps().vl_agnostic;
  for (const auto& t : tiles.tiles) {
    const bool probeable =
        vla ? be.tile_feasible(t.mr, t.nr)
            : (t.nr % lanes == 0 && codegen::tile_feasible(t.mr, t.nr, lanes));
    if (probeable) {
      const long max_steps = std::max(1L, opts_.watchdog.probe_max_steps);
      AUTOGEMM_RETURN_IF_ERROR(
          vla ? probe_generated_vla(be, t.mr, t.nr, kc, max_steps)
              : probe_generated(t.mr, t.nr, kc, lanes, max_steps));
      break;
    }
  }

  if (failpoint::should_fail("verify.portable"))
    return InternalError("failpoint: verify.portable");
  const auto& t0 = tiles.tiles.front();
  return probe_portable(t0.mr, t0.nr, kc);
}

Context::PlanEntry Context::entry_for(int m, int n, int k) {
  const ShapeKey key{m, n, k};
  {
    std::lock_guard lock(mu_);
    auto it = plan_index_.find(key);
    if (it != plan_index_.end()) {
      if (it->second->second.generation == records_gen_) {
        ++stats_.plan_hits;
        obs_handles().plan_hits->add(1);
        plan_lru_.splice(plan_lru_.begin(), plan_lru_, it->second);
        return it->second->second;
      }
      // Stale hit: the records table changed since this entry resolved
      // (publish_record bumped the generation), so the cached plan may no
      // longer be the shape's best resolution — exact records beat the
      // nearest/heuristic rung this entry may be on, and even a nearest
      // resolution can improve when a neighbor shape was published. Drop
      // it and re-resolve through the full ladder below.
      plan_lru_.erase(it->second);
      plan_index_.erase(it);
    }
    ++stats_.plan_misses;
    obs_handles().plan_misses->add(1);
  }
  // The resolve span covers candidate construction, DMT tiling and the
  // first-use probes — the cold-path cost a cache hit amortizes away.
  obs::SpanScope resolve_span("plan.resolve", static_cast<std::uint64_t>(m),
                              static_cast<std::uint64_t>(n));

  // Candidate ladder: tuned record (exact, else nearest), then the
  // heuristic. Each candidate must build a Plan and pass first-use
  // verification; a failure quarantines it and the next candidate serves.
  // Plan construction, DMT and the probes all run outside the lock so
  // concurrent misses on distinct shapes don't serialize; a racing build
  // of the same shape is deterministic, so first-in wins below.
  struct Candidate {
    GemmConfig cfg;
    int kind;  // 0 = exact record, 1 = nearest record, 2 = heuristic
  };
  std::vector<Candidate> candidates;
  const tune::ShapeKey shape{m, n, k};
  // Record resolution is scoped to this context's backend: a mixed-backend
  // records file never hands an SVE blocking to a NEON context (or vice
  // versa), for both the exact and the nearest-shape rung. The lookups
  // hold mu_ — publish_record mutates the table — and the generation is
  // snapshotted in the same critical section, so a publish racing this
  // resolve leaves the inserted entry stale and the next hit re-resolves.
  std::uint64_t resolve_gen = 0;
  {
    std::lock_guard lock(mu_);
    resolve_gen = records_gen_;
    if (auto exact = records_.lookup(shape, backend_)) {
      candidates.push_back({tune::config_from_candidate(m, n, k, *exact), 0});
    } else if (auto nearest = records_.lookup_nearest(
                   shape, /*max_log2_distance=*/1.0, backend_)) {
      // Plan construction clamps the transferred blocking to this problem.
      candidates.push_back({tune::config_from_candidate(m, n, k, *nearest), 1});
    }
  }
  candidates.push_back({default_config(m, n, k), 2});
  // A context-level strategy override beats whatever the candidates carry
  // (tuned records may pin a strategy per shape; kAuto leaves them alone).
  // The backend is pinned unconditionally: it is a property of the
  // context, not of any individual record.
  for (auto& cand : candidates) {
    cand.cfg.backend = backend_;
    if (opts_.parallel_strategy != ParallelStrategy::kAuto)
      cand.cfg.parallel_strategy = opts_.parallel_strategy;
  }

  PlanEntry entry;  // plan == nullptr -> reference pin
  entry.latency = &shape_latency_histogram(m, n, k);
  entry.latency_dtype =
      &shape_dtype_latency_histogram(m, n, k, common::DType::kF32);
  entry.generation = resolve_gen;
  for (const auto& cand : candidates) {
    StatusOr<Plan> plan_or = Plan::create(m, n, k, cand.cfg);
    if (!plan_or.ok()) {
      record_event(HealthEvent::Kind::kQuarantine,
                   "shape " + shape_string(m, n, k) + " config " +
                       config_string(cand.cfg) + ": " +
                       plan_or.status().to_string());
      continue;
    }
    auto plan = std::make_shared<const Plan>(std::move(plan_or).value());
    const GemmConfig& cfg = plan->config();  // post-clamp values
    const ConfigKey ck{cfg.mc,
                       cfg.nc,
                       cfg.kc,
                       static_cast<int>(cfg.loop_order),
                       static_cast<int>(cfg.packing),
                       static_cast<int>(cfg.tiling),
                       cfg.hw.lanes,
                       static_cast<int>(cfg.backend)};
    bool quarantined = false, verified = false;
    {
      std::lock_guard lock(mu_);
      quarantined = quarantined_.count(ck) > 0;
      verified = verified_.count(ck) > 0;
    }
    if (quarantined) continue;
    if (opts_.verify_kernels && !verified) {
      const Status v = verify_config(*plan);
      if (!v.ok()) {
        obs_handles().probe_failures->add(1);
        {
          std::lock_guard lock(mu_);
          ++health_.probe_failures;
          quarantined_[ck] = v.to_string();
        }
        record_event(HealthEvent::Kind::kQuarantine,
                     "config " + config_string(cfg) + " for shape " +
                         shape_string(m, n, k) + ": " + v.to_string());
        continue;
      }
      std::lock_guard lock(mu_);
      verified_[ck] = true;
    }
    {
      std::lock_guard lock(mu_);
      if (cand.kind == 0) ++stats_.resolved_exact;
      else if (cand.kind == 1) ++stats_.resolved_nearest;
      else ++stats_.resolved_heuristic;
    }
    if (cand.kind == 0) obs_handles().resolved_exact->add(1);
    else if (cand.kind == 1) obs_handles().resolved_nearest->add(1);
    else obs_handles().resolved_heuristic->add(1);
    entry.plan = std::move(plan);
    break;
  }
  if (entry.plan == nullptr) {
    {
      std::lock_guard lock(mu_);
      ++health_.reference_shapes;
    }
    record_event(HealthEvent::Kind::kReferenceFallback,
                 "shape " + shape_string(m, n, k) +
                     ": every candidate config quarantined; pinned to the "
                     "reference path");
  }

  std::lock_guard lock(mu_);
  auto it = plan_index_.find(key);
  if (it != plan_index_.end()) {
    plan_lru_.splice(plan_lru_.begin(), plan_lru_, it->second);
    return it->second->second;
  }
  plan_lru_.emplace_front(key, entry);
  plan_index_[key] = plan_lru_.begin();
  while (plan_lru_.size() > opts_.plan_capacity) {
    plan_index_.erase(plan_lru_.back().first);
    plan_lru_.pop_back();
    ++stats_.plan_evictions;
    obs_handles().plan_evictions->add(1);
  }
  return entry;
}

std::shared_ptr<const Plan> Context::plan_for(int m, int n, int k) {
  PlanEntry entry = entry_for(m, n, k);
  if (entry.plan != nullptr) return entry.plan;
  // Reference-pinned shape: legacy callers still need a Plan object to
  // hand to the free gemm() overloads; run() is where the pin is honored.
  return std::make_shared<const Plan>(m, n, k, default_config(m, n, k));
}

void Context::note_strategy(bool serial, ParallelStrategy chosen) {
  const BackendObs& bo = backend_obs(backend_);
  if (serial) {
    obs_handles().strategy_serial->add(1);
    bo.strategy_serial->add(1);
  } else if (chosen == ParallelStrategy::kKSplit) {
    obs_handles().strategy_ksplit->add(1);
    bo.strategy_ksplit->add(1);
  } else {
    obs_handles().strategy_blocks->add(1);
    bo.strategy_blocks->add(1);
  }
  std::lock_guard lock(mu_);
  if (serial) {
    ++stats_.strategy_serial;
    health_.last_parallel_strategy = "serial";
  } else if (chosen == ParallelStrategy::kKSplit) {
    ++stats_.strategy_ksplit;
    health_.last_parallel_strategy = "k-split";
  } else {
    ++stats_.strategy_blocks;
    health_.last_parallel_strategy = "blocks-only";
  }
}

Status Context::execute_entry(const PlanEntry& entry, ConstMatrixView a,
                              ConstMatrixView b, MatrixView c,
                              const GemmExParams& beta1_params,
                              const PackedA* packed_a,
                              const PackedB* packed_b) {
  const std::uint64_t m = static_cast<std::uint64_t>(std::max(0, c.rows));
  const std::uint64_t n = static_cast<std::uint64_t>(std::max(0, c.cols));
  const std::uint64_t k = static_cast<std::uint64_t>(
      std::max(0, beta1_params.trans_a == Trans::kNo ? a.cols : a.rows));
  obs::SpanScope span("context.execute", m * n, k);
  ObsHandles& h = obs_handles();
  const std::uint64_t t0 = common::now_ns();
  const Status s =
      execute_entry_impl(entry, a, b, c, beta1_params, packed_a, packed_b);
  const double seconds = static_cast<double>(common::now_ns() - t0) * 1e-9;
  backend_obs(backend_).dispatch->add(1);
  h.calls->add(1);
  h.flops->add(2 * m * n * k);
  h.gemm_seconds->observe(seconds);
  if (entry.latency != nullptr) entry.latency->observe(seconds);
  if (entry.latency_dtype != nullptr) entry.latency_dtype->observe(seconds);
  return s;
}

Status Context::execute_entry_impl(const PlanEntry& entry, ConstMatrixView a,
                                   ConstMatrixView b, MatrixView c,
                                   const GemmExParams& beta1_params,
                                   const PackedA* packed_a,
                                   const PackedB* packed_b) {
  if (entry.plan == nullptr) {
    note_strategy(/*serial=*/true, ParallelStrategy::kBlocksOnly);
    accumulate_reference(a, b, c, beta1_params);
    return Status::OK();
  }
  const Plan& plan = *entry.plan;
  common::ThreadPool* pool = effective_pool();
  const bool pooled = pool != nullptr && pool->size() > 1;
  const bool canonical = beta1_params.trans_a == Trans::kNo &&
                         beta1_params.trans_b == Trans::kNo &&
                         beta1_params.alpha == 1.0f;
  // Mirror the executor's choice for observability: gemm_ex's pooled path
  // only schedules C blocks; the canonical path resolves the plan's
  // strategy the same way core/gemm.cpp will.
  note_strategy(/*serial=*/!pooled,
                pooled && canonical
                    ? choose_parallel_strategy(plan, pool->size())
                    : ParallelStrategy::kBlocksOnly);
  try {
    if (canonical) {
      if (packed_a != nullptr) {
        autogemm::gemm(*packed_a, a, b, c, plan, pool);
      } else if (packed_b != nullptr) {
        autogemm::gemm(a, *packed_b, b, c, plan, pool);
      } else {
        autogemm::gemm(a, b, c, plan, pool);
      }
    } else {
      gemm_ex(a, b, c, beta1_params, plan, pool);
    }
    return Status::OK();
  } catch (const std::bad_alloc&) {
    if (!pooled) {
      // Serial paths allocate all scratch before touching C, so C still
      // holds exactly beta*C here and the reference tier can finish the
      // call with a correct answer.
      {
        std::lock_guard lock(mu_);
        ++health_.alloc_fallbacks;
      }
      record_event(
          HealthEvent::Kind::kAllocFallback,
          "scratch allocation failed for shape " +
              shape_string(c.rows, c.cols,
                           beta1_params.trans_a == Trans::kNo ? a.cols
                                                              : a.rows) +
              "; call served by the reference path");
      accumulate_reference(a, b, c, beta1_params);
      return Status::OK();
    }
    // Workers may have written part of C already; the result cannot be
    // repaired in place. Retire the pool so subsequent calls run serial.
    pool_degraded_.store(true);
    record_event(HealthEvent::Kind::kPoolDegraded,
                 "allocation failure inside the parallel region; pool "
                 "retired, subsequent calls run serial");
    return ResourceExhaustedError(
        "gemm: allocation failed mid-parallel-execution; C contents are "
        "unspecified for this call (subsequent calls degrade to serial)");
  } catch (const std::exception& e) {
    if (pooled) {
      pool_degraded_.store(true);
      record_event(HealthEvent::Kind::kPoolDegraded,
                   std::string("worker fault: ") + e.what() +
                       "; pool retired, subsequent calls run serial");
      return InternalError(std::string("gemm: worker fault: ") + e.what() +
                           "; C contents are unspecified for this call");
    }
    return InternalError(std::string("gemm: execution fault: ") + e.what());
  }
}

Status Context::run(ConstMatrixView a, ConstMatrixView b, MatrixView c,
                    const GemmExParams& params) {
  obs::SpanScope span("context.run",
                      static_cast<std::uint64_t>(std::max(0, c.rows)),
                      static_cast<std::uint64_t>(std::max(0, c.cols)));
  const Status v = validate_call(a, b, c, params);
  if (!v.ok()) return record_error(v);
  const int m = c.rows, n = c.cols;
  const int k = params.trans_a == Trans::kNo ? a.cols : a.rows;
  // Degenerate shapes are well-defined no-ops: an empty C has nothing to
  // write; K == 0 makes op(A)*op(B) the zero matrix, so C = beta*C.
  if (m == 0 || n == 0) return Status::OK();
  if (k == 0) {
    detail::scale_c(c, params.beta);
    return Status::OK();
  }
  // beta is applied exactly once, up front; every tier below accumulates.
  if (params.beta != 1.0f) detail::scale_c(c, params.beta);
  GemmExParams beta1 = params;
  beta1.beta = 1.0f;
  const PlanEntry entry = entry_for(m, n, k);
  return record_error(execute_entry(entry, a, b, c, beta1, nullptr, nullptr));
}

StatusOr<std::shared_ptr<const PackedA>> Context::packed_a_for(
    ConstMatrixView a, const std::shared_ptr<const Plan>& plan) {
  const PackedKey key{a.data, a.rows, a.cols, a.ld, /*is_a=*/true};
  {
    std::lock_guard lock(mu_);
    auto it = packed_index_.find(key);
    if (it != packed_index_.end()) {
      ++stats_.packed_hits;
      obs_handles().packed_hits->add(1);
      packed_lru_.splice(packed_lru_.begin(), packed_lru_, it->second);
      return it->second->second.a;
    }
    ++stats_.packed_misses;
    obs_handles().packed_misses->add(1);
  }
  StatusOr<PackedA> packed_or = PackedA::create(a, *plan);
  if (!packed_or.ok()) return packed_or.status();
  auto packed = std::make_shared<const PackedA>(std::move(packed_or).value());
  std::lock_guard lock(mu_);
  auto it = packed_index_.find(key);
  if (it != packed_index_.end()) {
    packed_lru_.splice(packed_lru_.begin(), packed_lru_, it->second);
    return it->second->second.a;
  }
  packed_lru_.emplace_front(
      key, PackedEntry{std::move(packed), nullptr, plan, nullptr});
  packed_index_[key] = packed_lru_.begin();
  while (packed_lru_.size() > opts_.packed_capacity) {
    packed_index_.erase(packed_lru_.back().first);
    packed_lru_.pop_back();
    ++stats_.packed_evictions;
    obs_handles().packed_evictions->add(1);
  }
  return packed_lru_.front().second.a;
}

StatusOr<std::shared_ptr<const PackedB>> Context::packed_b_for(
    ConstMatrixView b, const std::shared_ptr<const Plan>& plan) {
  const PackedKey key{b.data, b.rows, b.cols, b.ld, /*is_a=*/false};
  {
    std::lock_guard lock(mu_);
    auto it = packed_index_.find(key);
    if (it != packed_index_.end()) {
      ++stats_.packed_hits;
      obs_handles().packed_hits->add(1);
      packed_lru_.splice(packed_lru_.begin(), packed_lru_, it->second);
      return it->second->second.b;
    }
    ++stats_.packed_misses;
    obs_handles().packed_misses->add(1);
  }
  StatusOr<PackedB> packed_or = PackedB::create(b, *plan);
  if (!packed_or.ok()) return packed_or.status();
  auto packed = std::make_shared<const PackedB>(std::move(packed_or).value());
  std::lock_guard lock(mu_);
  auto it = packed_index_.find(key);
  if (it != packed_index_.end()) {
    packed_lru_.splice(packed_lru_.begin(), packed_lru_, it->second);
    return it->second->second.b;
  }
  packed_lru_.emplace_front(
      key, PackedEntry{nullptr, std::move(packed), plan, nullptr});
  packed_index_[key] = packed_lru_.begin();
  while (packed_lru_.size() > opts_.packed_capacity) {
    packed_index_.erase(packed_lru_.back().first);
    packed_lru_.pop_back();
    ++stats_.packed_evictions;
    obs_handles().packed_evictions->add(1);
  }
  return packed_lru_.front().second.b;
}

Status Context::run_const_a(ConstMatrixView a, ConstMatrixView b, MatrixView c,
                            const GemmExParams& params) {
  if (params.trans_a != Trans::kNo || params.trans_b != Trans::kNo ||
      params.alpha != 1.0f) {
    return run(a, b, c, params);  // cached packing needs canonical operands
  }
  obs::SpanScope span("context.run_const_a",
                      static_cast<std::uint64_t>(std::max(0, c.rows)),
                      static_cast<std::uint64_t>(std::max(0, c.cols)));
  const Status v = validate_call(a, b, c, params);
  if (!v.ok()) return record_error(v);
  const int m = c.rows, n = c.cols, k = a.cols;
  if (m == 0 || n == 0) return Status::OK();
  if (k == 0) {
    detail::scale_c(c, params.beta);
    return Status::OK();
  }
  GemmExParams beta1 = params;
  beta1.beta = 1.0f;
  const PlanEntry entry = entry_for(m, n, k);
  if (entry.plan == nullptr) {
    if (params.beta != 1.0f) detail::scale_c(c, params.beta);
    return record_error(execute_entry(entry, a, b, c, beta1, nullptr, nullptr));
  }
  auto packed_or = packed_a_for(a, entry.plan);
  if (!packed_or.ok() &&
      packed_or.status().code() != StatusCode::kResourceExhausted) {
    return record_error(packed_or.status());  // C untouched
  }
  if (params.beta != 1.0f) detail::scale_c(c, params.beta);
  if (!packed_or.ok()) {
    // Packing scratch did not fit; the unpacked path (which may itself
    // degrade further) serves the call.
    record_event(HealthEvent::Kind::kAllocFallback,
                 "PackedA allocation failed; serving unpacked");
    return record_error(execute_entry(entry, a, b, c, beta1, nullptr, nullptr));
  }
  const std::shared_ptr<const PackedA> packed = packed_or.value();
  return record_error(
      execute_entry(entry, a, b, c, beta1, packed.get(), nullptr));
}

Status Context::run_const_b(ConstMatrixView a, ConstMatrixView b, MatrixView c,
                            const GemmExParams& params) {
  if (params.trans_a != Trans::kNo || params.trans_b != Trans::kNo ||
      params.alpha != 1.0f) {
    return run(a, b, c, params);
  }
  obs::SpanScope span("context.run_const_b",
                      static_cast<std::uint64_t>(std::max(0, c.rows)),
                      static_cast<std::uint64_t>(std::max(0, c.cols)));
  const Status v = validate_call(a, b, c, params);
  if (!v.ok()) return record_error(v);
  const int m = c.rows, n = c.cols, k = a.cols;
  if (m == 0 || n == 0) return Status::OK();
  if (k == 0) {
    detail::scale_c(c, params.beta);
    return Status::OK();
  }
  GemmExParams beta1 = params;
  beta1.beta = 1.0f;
  const PlanEntry entry = entry_for(m, n, k);
  if (entry.plan == nullptr) {
    if (params.beta != 1.0f) detail::scale_c(c, params.beta);
    return record_error(execute_entry(entry, a, b, c, beta1, nullptr, nullptr));
  }
  auto packed_or = packed_b_for(b, entry.plan);
  if (!packed_or.ok() &&
      packed_or.status().code() != StatusCode::kResourceExhausted) {
    return record_error(packed_or.status());
  }
  if (params.beta != 1.0f) detail::scale_c(c, params.beta);
  if (!packed_or.ok()) {
    record_event(HealthEvent::Kind::kAllocFallback,
                 "PackedB allocation failed; serving unpacked");
    return record_error(execute_entry(entry, a, b, c, beta1, nullptr, nullptr));
  }
  const std::shared_ptr<const PackedB> packed = packed_or.value();
  return record_error(
      execute_entry(entry, a, b, c, beta1, nullptr, packed.get()));
}

void Context::gemm(ConstMatrixView a, ConstMatrixView b, MatrixView c,
                   const GemmExParams& params) {
  (void)run(a, b, c, params);  // failures are queryable via last_error()
}

void Context::gemm_const_a(ConstMatrixView a, ConstMatrixView b, MatrixView c,
                           const GemmExParams& params) {
  (void)run_const_a(a, b, c, params);
}

void Context::gemm_const_b(ConstMatrixView a, ConstMatrixView b, MatrixView c,
                           const GemmExParams& params) {
  (void)run_const_b(a, b, c, params);
}

StatusOr<std::shared_ptr<const quant::QPackedB>> Context::qpacked_b_for(
    ConstMatrixView b) {
  const PackedKey key{b.data, b.rows, b.cols, b.ld, /*is_a=*/false,
                      common::DType::kI8};
  {
    std::lock_guard lock(mu_);
    auto it = packed_index_.find(key);
    if (it != packed_index_.end()) {
      ++stats_.packed_hits;
      obs_handles().packed_hits->add(1);
      packed_lru_.splice(packed_lru_.begin(), packed_lru_, it->second);
      return it->second->second.qb;
    }
    ++stats_.packed_misses;
    obs_handles().packed_misses->add(1);
  }
  StatusOr<quant::QPackedB> packed_or = quant::QPackedB::create(b);
  if (!packed_or.ok()) return packed_or.status();
  auto packed =
      std::make_shared<const quant::QPackedB>(std::move(packed_or).value());
  std::lock_guard lock(mu_);
  auto it = packed_index_.find(key);
  if (it != packed_index_.end()) {
    packed_lru_.splice(packed_lru_.begin(), packed_lru_, it->second);
    return it->second->second.qb;
  }
  packed_lru_.emplace_front(
      key, PackedEntry{nullptr, nullptr, nullptr, std::move(packed)});
  packed_index_[key] = packed_lru_.begin();
  while (packed_lru_.size() > opts_.packed_capacity) {
    packed_index_.erase(packed_lru_.back().first);
    packed_lru_.pop_back();
    ++stats_.packed_evictions;
    obs_handles().packed_evictions->add(1);
  }
  return packed_lru_.front().second.qb;
}

Status Context::execute_quant(ConstMatrixView a, ConstMatrixView b,
                              const quant::QPackedB* qb, MatrixView c,
                              const quant::QGemmOptions& opts) {
  const std::uint64_t m = static_cast<std::uint64_t>(std::max(0, c.rows));
  const std::uint64_t n = static_cast<std::uint64_t>(std::max(0, c.cols));
  const std::uint64_t k = static_cast<std::uint64_t>(std::max(0, a.cols));
  obs::SpanScope span("context.execute_i8", m * n, k);
  ObsHandles& h = obs_handles();
  const std::uint64_t t0 = common::now_ns();
  const Status s = qb != nullptr ? quant::qgemm(a, *qb, c, opts)
                                 : quant::qgemm(a, b, c, opts);
  const double seconds = static_cast<double>(common::now_ns() - t0) * 1e-9;
  h.calls->add(1);
  h.flops->add(2 * m * n * k);
  h.gemm_seconds->observe(seconds);
  const QuantShapeObs& qobs = quant_shape_obs(c.rows, c.cols, a.cols);
  qobs.latency->observe(seconds);
  qobs.latency_dtype->observe(seconds);
  return s;
}

Status Context::run_i8(ConstMatrixView a, ConstMatrixView b, MatrixView c,
                       float alpha, float beta) {
  obs::SpanScope span("context.run_i8",
                      static_cast<std::uint64_t>(std::max(0, c.rows)),
                      static_cast<std::uint64_t>(std::max(0, c.cols)));
  GemmExParams params;
  params.alpha = alpha;
  params.beta = beta;
  const Status v = validate_call(a, b, c, params);
  if (!v.ok()) return record_error(v);
  const int m = c.rows, n = c.cols, k = a.cols;
  if (m == 0 || n == 0) return Status::OK();
  if (k == 0) {
    detail::scale_c(c, beta);
    return Status::OK();
  }
  quant::QGemmOptions qopts;
  qopts.alpha = alpha;
  qopts.beta = beta;
  return record_error(execute_quant(a, b, nullptr, c, qopts));
}

Status Context::run_const_b_i8(ConstMatrixView a, ConstMatrixView b,
                               MatrixView c, float alpha, float beta) {
  obs::SpanScope span("context.run_const_b_i8",
                      static_cast<std::uint64_t>(std::max(0, c.rows)),
                      static_cast<std::uint64_t>(std::max(0, c.cols)));
  GemmExParams params;
  params.alpha = alpha;
  params.beta = beta;
  const Status v = validate_call(a, b, c, params);
  if (!v.ok()) return record_error(v);
  const int m = c.rows, n = c.cols, k = a.cols;
  if (m == 0 || n == 0) return Status::OK();
  if (k == 0) {
    detail::scale_c(c, beta);
    return Status::OK();
  }
  quant::QGemmOptions qopts;
  qopts.alpha = alpha;
  qopts.beta = beta;
  auto qb_or = qpacked_b_for(b);
  if (!qb_or.ok() &&
      qb_or.status().code() != StatusCode::kResourceExhausted) {
    return record_error(qb_or.status());  // C untouched
  }
  if (!qb_or.ok()) {
    // Quantized packing scratch did not fit; the pack-per-call path still
    // serves the request correctly.
    record_event(HealthEvent::Kind::kAllocFallback,
                 "QPackedB allocation failed; serving unpacked");
    return record_error(execute_quant(a, b, nullptr, c, qopts));
  }
  const std::shared_ptr<const quant::QPackedB> qb = qb_or.value();
  return record_error(execute_quant(a, b, qb.get(), c, qopts));
}

void Context::gemm_i8(ConstMatrixView a, ConstMatrixView b, MatrixView c,
                      float alpha, float beta) {
  (void)run_i8(a, b, c, alpha, beta);
}

void Context::gemm_const_b_i8(ConstMatrixView a, ConstMatrixView b,
                              MatrixView c, float alpha, float beta) {
  (void)run_const_b_i8(a, b, c, alpha, beta);
}

Status Context::run_batched(const std::vector<BatchItem>& items) {
  return run_batched_impl(items, /*validate=*/true);
}

Status Context::run_batched_prevalidated(const std::vector<BatchItem>& items) {
  return run_batched_impl(items, /*validate=*/false);
}

Status Context::run_batched_impl(const std::vector<BatchItem>& items,
                                 bool validate) {
  obs::SpanScope span("context.run_batched",
                      static_cast<std::uint64_t>(items.size()), 0);
  // Whole-batch validation (per-member + cross-member aliasing) before
  // any C is written: a bad member fails the batch with every output
  // untouched, so callers can safely retry member-by-member. The
  // prevalidated entry skips this: the serve engine has already run
  // validate_batch_item per admission and demoted every member flagged
  // by find_cross_member_conflicts, so the checks would be pure repeat
  // work on the hot dispatch path.
  if (validate) {
    const Status v = validate_batch(items);
    if (!v.ok()) return record_error(v);
  }
  if (items.empty()) return Status::OK();

  // Bucket members by shape and resolve each distinct shape's entry up
  // front (workers must only read). Degenerate members (M, N or K of
  // zero) are accumulate no-ops — an empty product adds nothing to C —
  // matching run() at beta == 1.
  struct Group {
    PlanEntry entry;
    std::vector<std::size_t> members;
    // Transient packing for a group-shared constant operand: packed once,
    // reused by every member. Not entered into the packed LRU — batch
    // operands carry no constancy promise beyond this call.
    std::shared_ptr<const PackedA> packed_a;
    std::shared_ptr<const PackedB> packed_b;
  };
  std::map<ShapeKey, Group> groups;
  for (std::size_t i = 0; i < items.size(); ++i) {
    const BatchItem& it = items[i];
    if (it.c.rows == 0 || it.c.cols == 0 || it.a.cols == 0) continue;
    groups[ShapeKey{it.c.rows, it.c.cols, it.a.cols}].members.push_back(i);
  }

  std::uint64_t members_total = 0;
  std::uint64_t flops = 0;
  for (auto& [key, g] : groups) {
    g.entry = entry_for(key.m, key.n, key.k);
    if (g.entry.plan != nullptr && g.members.size() >= 2) {
      const ConstMatrixView a0 = items[g.members[0]].a;
      const ConstMatrixView b0 = items[g.members[0]].b;
      const auto same_view = [](ConstMatrixView x, ConstMatrixView y) {
        return x.data == y.data && x.ld == y.ld;
      };
      bool shared_a = true, shared_b = true;
      for (std::size_t i : g.members) {
        shared_a = shared_a && same_view(items[i].a, a0);
        shared_b = shared_b && same_view(items[i].b, b0);
      }
      // A packing failure is not an error: the unpacked path serves the
      // group (and may degrade further on its own, as in run()).
      if (shared_a) {
        StatusOr<PackedA> p = PackedA::create(a0, *g.entry.plan);
        if (p.ok())
          g.packed_a = std::make_shared<const PackedA>(std::move(p).value());
      } else if (shared_b) {
        StatusOr<PackedB> p = PackedB::create(b0, *g.entry.plan);
        if (p.ok())
          g.packed_b = std::make_shared<const PackedB>(std::move(p).value());
      }
    }
    members_total += g.members.size();
    flops += 2ull * static_cast<std::uint64_t>(key.m) *
             static_cast<std::uint64_t>(key.n) *
             static_cast<std::uint64_t>(key.k) * g.members.size();
  }
  if (members_total == 0) return Status::OK();

  // Calls/FLOPs mirror onto the registry per member; batch-level timing
  // is the caller's concern (the serve engine keeps its own batch-size
  // and queue-latency histograms), so no per-member latency samples are
  // fabricated here.
  ObsHandles& h = obs_handles();
  h.calls->add(members_total);
  h.flops->add(flops);
  backend_obs(backend_).dispatch->add(members_total);

  const GemmExParams canonical{};
  Status result = Status::OK();
  common::ThreadPool* p = effective_pool();
  if (p != nullptr && p->size() > 1) {
    // Pooled: one flat work list so parallel_for spreads members across
    // workers regardless of group boundaries.
    struct ItemExec {
      const BatchItem* item;
      const Plan* plan;  // nullptr == reference-pinned shape
      const PackedA* packed_a;
      const PackedB* packed_b;
    };
    std::vector<ItemExec> execs;
    execs.reserve(members_total);
    for (auto& [key, g] : groups)
      for (std::size_t i : g.members)
        execs.push_back(ItemExec{&items[i], g.entry.plan.get(),
                                 g.packed_a.get(), g.packed_b.get()});
    const auto run_one = [&](const ItemExec& e) {
      // Each member runs single-threaded (no nested parallelism); a
      // reference-pinned shape runs the reference tier, as in run().
      if (e.plan == nullptr) {
        accumulate_reference(e.item->a, e.item->b, e.item->c, canonical);
      } else if (e.packed_a != nullptr) {
        autogemm::gemm(*e.packed_a, e.item->a, e.item->b, e.item->c, *e.plan,
                       nullptr);
      } else if (e.packed_b != nullptr) {
        autogemm::gemm(e.item->a, *e.packed_b, e.item->b, e.item->c, *e.plan,
                       nullptr);
      } else {
        autogemm::gemm(e.item->a, e.item->b, e.item->c, *e.plan, nullptr);
      }
    };
    try {
      p->parallel_for(static_cast<int>(execs.size()),
                      [&](int i) { run_one(execs[i]); });
    } catch (const std::exception& e) {
      // Workers may have written parts of several C outputs already; the
      // batch cannot be repaired in place. Retire the pool so subsequent
      // calls run serial.
      pool_degraded_.store(true);
      record_event(HealthEvent::Kind::kPoolDegraded,
                   std::string("worker fault in run_batched: ") + e.what() +
                       "; pool retired");
      result = InternalError(
          std::string("run_batched: worker fault: ") + e.what() +
          "; C contents are unspecified for this batch (subsequent calls "
          "degrade to serial)");
    }
  } else {
    // Serial: one shared-scratch pass per group (detail::gemm_group_serial)
    // amortizes the per-call fixed costs — scratch allocation, span setup —
    // across the group's members, which is where the batched path's win
    // over per-request run() comes from on tiny shapes.
    for (auto& [key, g] : groups) {
      if (g.entry.plan == nullptr) {
        for (std::size_t i : g.members)
          accumulate_reference(items[i].a, items[i].b, items[i].c, canonical);
        continue;
      }
      std::vector<detail::GroupMember> ms;
      ms.reserve(g.members.size());
      for (std::size_t i : g.members)
        ms.push_back({items[i].a, items[i].b, items[i].c});
      std::size_t began = 0;
      try {
        detail::gemm_group_serial(ms.data(), ms.size(), g.packed_a.get(),
                                  g.packed_b.get(), *g.entry.plan, &began);
      } catch (const std::bad_alloc&) {
        if (began == 0) {
          // The group's shared scratch failed before any C was touched;
          // the reference tier serves the whole group correctly.
          {
            std::lock_guard lock(mu_);
            ++health_.alloc_fallbacks;
          }
          record_event(HealthEvent::Kind::kAllocFallback,
                       "scratch allocation failed for batch group shape " +
                           shape_string(key.m, key.n, key.k) +
                           "; group served by the reference path");
          for (std::size_t i : g.members)
            accumulate_reference(items[i].a, items[i].b, items[i].c,
                                 canonical);
        } else {
          result = InternalError(
              "run_batched: allocation failed mid-group for shape " +
              shape_string(key.m, key.n, key.k) +
              "; that group's C contents are unspecified, other groups ran");
        }
      } catch (const std::exception& ex) {
        result = InternalError(
            std::string("run_batched: execution fault: ") + ex.what() +
            "; that group's C contents are unspecified, other groups ran");
      }
    }
  }
  return record_error(result);
}

void Context::gemm_batched(const std::vector<BatchItem>& items) {
  (void)run_batched(items);  // failures are queryable via last_error()
}

std::size_t Context::invalidate(const void* data) {
  std::lock_guard lock(mu_);
  std::size_t dropped = 0;
  for (auto it = packed_lru_.begin(); it != packed_lru_.end();) {
    if (it->first.data == data) {
      packed_index_.erase(it->first);
      it = packed_lru_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  stats_.packed_invalidations += dropped;
  obs_handles().packed_invalidations->add(dropped);
  return dropped;
}

bool Context::invalidate_plan(int m, int n, int k) {
  const ShapeKey key{m, n, k};
  std::lock_guard lock(mu_);
  auto it = plan_index_.find(key);
  if (it == plan_index_.end()) return false;
  plan_lru_.erase(it->second);
  plan_index_.erase(it);
  ++stats_.plan_invalidations;
  obs_handles().plan_invalidations->add(1);
  return true;
}

bool Context::publish_record(int m, int n, int k,
                             const tune::Candidate& candidate, double cost) {
  // The backend is a property of the context, not of the record handed in:
  // pin it so a tuner that enumerated under kAuto cannot publish a record
  // this context's resolution (scoped to backend_) would never see.
  tune::Candidate pinned = candidate;
  pinned.backend = backend_;
  std::lock_guard lock(mu_);
  if (!records_.add(tune::ShapeKey{m, n, k}, pinned, cost)) return false;
  // Every cached entry resolved against the old table; bumping the
  // generation makes each re-resolve lazily on its next hit (neighbors of
  // the published shape may now prefer it on the nearest rung). The
  // published shape itself is dropped eagerly so the very next request
  // executes the new config even through plan_for's shared_ptr path.
  ++records_gen_;
  auto it = plan_index_.find(ShapeKey{m, n, k});
  if (it != plan_index_.end()) {
    plan_lru_.erase(it->second);
    plan_index_.erase(it);
    ++stats_.plan_invalidations;
    obs_handles().plan_invalidations->add(1);
  }
  return true;
}

bool Context::has_exact_record(int m, int n, int k) const {
  std::lock_guard lock(mu_);
  return records_.lookup(tune::ShapeKey{m, n, k}, backend_).has_value();
}

tune::TuningRecords Context::records_snapshot() const {
  std::lock_guard lock(mu_);
  return records_;
}

void Context::clear() {
  std::lock_guard lock(mu_);
  plan_index_.clear();
  plan_lru_.clear();
  packed_index_.clear();
  packed_lru_.clear();
  // quarantined_/verified_/health_ survive on purpose: a poisoned config
  // stays poisoned across cache resets.
}

ContextStats Context::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

HealthReport Context::health() const {
  std::lock_guard lock(mu_);
  HealthReport r = health_;
  r.quarantined_configs = quarantined_.size();
  r.pool_degraded = pool_degraded_.load(std::memory_order_relaxed);
  r.records_skipped = records_skipped_;
  r.degraded = r.degraded || r.pool_degraded;
  return r;
}

Status Context::last_error() const {
  ThreadErrorMap& tm = thread_errors();
  std::lock_guard lock(tm.mu);
  const auto it = tm.errors.find(id_);
  return it != tm.errors.end() ? it->second : Status::OK();
}

std::size_t Context::plan_cache_size() const {
  std::lock_guard lock(mu_);
  return plan_lru_.size();
}

std::size_t Context::packed_cache_size() const {
  std::lock_guard lock(mu_);
  return packed_lru_.size();
}

sim::SimOptions Context::pipeline_options() const {
  sim::SimOptions o;
  o.max_dynamic_instructions =
      std::max(1L, opts_.watchdog.sim_max_dynamic_instructions);
  o.max_cycles = opts_.watchdog.sim_max_cycles;
  return o;
}

Context& default_context() {
  // Serial so the free-function wrappers behave exactly like the
  // pre-Context API (plan caching aside, which they already had).
  static Context ctx([] {
    ContextOptions opts;
    opts.threads = 1;
    return opts;
  }());
  return ctx;
}

void set_shape_label_cap(std::size_t cap) {
  shape_label_cap_storage().store(cap);
}

std::size_t shape_label_cap() { return shape_label_cap_storage().load(); }

}  // namespace autogemm
