#include "core/gemm.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "core/context.hpp"
#include "kernels/dispatch.hpp"
#include "kernels/packing.hpp"
#include "obs/trace.hpp"

namespace autogemm {
namespace {

using common::ConstMatrixView;
using common::MatrixView;

int ceil_div(int a, int b) { return (a + b - 1) / b; }

// Executes every micro-tile of one cache block. a/b point at the block
// origin (packed scratch or a window into the source matrices).
void run_block(const tiling::TilingResult& tiles, const float* a, long lda,
               const float* b, long ldb, float* c, long ldc, int bk) {
  // Phase span at cache-block granularity: one per run_block call, not per
  // micro-tile — coarse enough that a disabled-tracing check costs one
  // branch per block (see bench_obs_overhead).
  obs::SpanScope span("kernel", tiles.tiles.size(), static_cast<unsigned>(bk));
  for (const auto& t : tiles.tiles) {
    kernels::run_tile(t.rows_used, t.cols_used,
                      a + static_cast<long>(t.row) * lda, lda, b + t.col, ldb,
                      c + static_cast<long>(t.row) * ldc + t.col, ldc, bk);
  }
}

// Per-worker scratch for online packing, reused across blocks.
struct Scratch {
  common::AlignedBuffer a_buf;
  common::AlignedBuffer b_buf;
  int a_block_i = -1, a_block_p = -1;  // ids of currently packed blocks
  int b_block_p = -1, b_block_j = -1;

  Scratch(const Plan& plan)
      : a_buf(static_cast<std::size_t>(plan.config().mc) * plan.config().kc),
        b_buf(static_cast<std::size_t>(plan.config().kc) * plan.config().nc) {}
};

// One (i, j, p) cache-block step of the blocked loop nest. Either operand
// may come pre-packed (offline); the others fall back to the plan's
// sigma_packing (online scratch or direct strided views).
void block_step(ConstMatrixView a, ConstMatrixView b, const PackedA* packed_a,
                const PackedB* packed_b, MatrixView c, const Plan& plan,
                Scratch& scratch, int bi, int bj, int bp) {
  const GemmConfig& cfg = plan.config();
  const int i0 = bi * cfg.mc, j0 = bj * cfg.nc, p0 = bp * cfg.kc;
  const int bm = std::min(cfg.mc, a.rows - i0);
  const int bn = std::min(cfg.nc, b.cols - j0);
  const int bk = std::min(cfg.kc, a.cols - p0);

  const float* a_ptr;
  long lda;
  const float* b_ptr;
  long ldb;
  const bool pack = cfg.packing == kernels::Packing::kOnline;
  if (packed_a != nullptr) {
    a_ptr = packed_a->block(bi, bp);
    lda = packed_a->block_ld();
  } else if (pack) {
    if (scratch.a_block_i != bi || scratch.a_block_p != bp) {
      obs::SpanScope span("pack_a", static_cast<unsigned>(bi),
                          static_cast<unsigned>(bp));
      kernels::pack_block(a.block(i0, p0, bm, bk), scratch.a_buf.data(), bk);
      scratch.a_block_i = bi;
      scratch.a_block_p = bp;
    }
    a_ptr = scratch.a_buf.data();
    lda = bk;
  } else {
    a_ptr = a.data + static_cast<long>(i0) * a.ld + p0;
    lda = a.ld;
  }
  if (packed_b != nullptr) {
    b_ptr = packed_b->block(bp, bj);
    ldb = packed_b->block_ld();
  } else if (pack) {
    if (scratch.b_block_p != bp || scratch.b_block_j != bj) {
      obs::SpanScope span("pack_b", static_cast<unsigned>(bp),
                          static_cast<unsigned>(bj));
      kernels::pack_block(b.block(p0, j0, bk, bn), scratch.b_buf.data(), bn);
      scratch.b_block_p = bp;
      scratch.b_block_j = bj;
    }
    b_ptr = scratch.b_buf.data();
    ldb = bn;
  } else {
    b_ptr = b.data + static_cast<long>(p0) * b.ld + j0;
    ldb = b.ld;
  }

  float* c_ptr = c.data + static_cast<long>(i0) * c.ld + j0;
  run_block(plan.block_tiling(bm, bn, bk), a_ptr, lda, b_ptr, ldb, c_ptr, c.ld,
            bk);
}

// Maps the loop order to a (dim0, dim1, dim2) permutation of (M, N, K)
// block indices; dimension codes: 0 = i (M), 1 = j (N), 2 = p (K).
std::array<int, 3> order_permutation(LoopOrder order) {
  switch (order) {
    case LoopOrder::kNKM: return {1, 2, 0};
    case LoopOrder::kNMK: return {1, 0, 2};
    case LoopOrder::kKNM: return {2, 1, 0};
    case LoopOrder::kKMN: return {2, 0, 1};
    case LoopOrder::kMNK: return {0, 1, 2};
    case LoopOrder::kMKN: return {0, 2, 1};
  }
  return {1, 2, 0};
}

// Shared loop nest over one member, with a caller-owned scratch (the
// group path reuses it across members; see detail::gemm_group_serial).
void run_member(ConstMatrixView a, ConstMatrixView b, const PackedA* packed_a,
                const PackedB* packed_b, MatrixView c, const Plan& plan,
                Scratch& scratch) {
  const GemmConfig& cfg = plan.config();
  const int nblk[3] = {ceil_div(plan.m(), cfg.mc), ceil_div(plan.n(), cfg.nc),
                       ceil_div(plan.k(), cfg.kc)};
  const auto perm = order_permutation(cfg.loop_order);
  int idx[3];  // block index per dimension code
  for (int x = 0; x < nblk[perm[0]]; ++x) {
    for (int y = 0; y < nblk[perm[1]]; ++y) {
      for (int z = 0; z < nblk[perm[2]]; ++z) {
        idx[perm[0]] = x;
        idx[perm[1]] = y;
        idx[perm[2]] = z;
        block_step(a, b, packed_a, packed_b, c, plan, scratch, idx[0], idx[1],
                   idx[2]);
      }
    }
  }
}

void execute_single(ConstMatrixView a, ConstMatrixView b,
                    const PackedA* packed_a, const PackedB* packed_b,
                    MatrixView c, const Plan& plan) {
  obs::SpanScope span("gemm.serial", static_cast<unsigned>(plan.m()),
                      static_cast<unsigned>(plan.n()));
  Scratch scratch(plan);
  run_member(a, b, packed_a, packed_b, c, plan, scratch);
}

// Scratch slot for the current thread: workers map to [0, size()), the
// caller (which also runs chunks inside parallel_for) to size().
int worker_slot(const common::ThreadPool& pool) {
  const int idx = common::ThreadPool::worker_index();
  if (idx < 0 || idx > static_cast<int>(pool.size()))
    return static_cast<int>(pool.size());
  return idx;
}

// One packing scratch per participant, built up front so the parallel
// region itself never allocates (a per-block Scratch used to be created
// inside the loop body, costing two aligned allocations per C block).
std::vector<Scratch> make_scratch(const Plan& plan,
                                  const common::ThreadPool& pool) {
  std::vector<Scratch> scratch;
  scratch.reserve(pool.participants());
  for (unsigned s = 0; s < pool.participants(); ++s) scratch.emplace_back(plan);
  return scratch;
}

void execute_parallel_blocks(ConstMatrixView a, ConstMatrixView b,
                             const PackedA* packed_a, const PackedB* packed_b,
                             MatrixView c, const Plan& plan,
                             common::ThreadPool& pool) {
  const GemmConfig& cfg = plan.config();
  const int mi = ceil_div(plan.m(), cfg.mc);
  const int nj = ceil_div(plan.n(), cfg.nc);
  const int kp = ceil_div(plan.k(), cfg.kc);
  // C blocks are the scheduling unit; each worker runs the full K loop for
  // its blocks. When mi*nj is too small to feed the pool (the large-K,
  // small-M·N regime), execute() routes to the k-split path instead.
  obs::SpanScope span("gemm.blocks", static_cast<unsigned>(mi * nj),
                      static_cast<unsigned>(kp));
  std::vector<Scratch> scratch = make_scratch(plan, pool);
  const bool traced = obs::trace_enabled();
  pool.parallel_for(mi * nj, [&](int block) {
    const int bi = block / nj;
    const int bj = block % nj;
    const int slot = worker_slot(pool);
    if (traced) obs::name_this_lane_worker(slot, pool.participants());
    Scratch& sc = scratch[slot];
    for (int bp = 0; bp < kp; ++bp)
      block_step(a, b, packed_a, packed_b, c, plan, sc, bi, bj, bp);
  });
}

// K-split path: the K block range [0, kp) is partitioned into `slices`
// contiguous ranges, each accumulating into its own zero-initialized
// partial-C buffer, and every (slice, C block) pair is a schedulable
// task. A fixed-order pairwise tree reduction then folds the partials
// into C. The task -> output mapping and the reduction order depend only
// on the plan and the slice count — never on which thread ran what — so
// the result is bitwise-stable for a fixed pool size.
void execute_parallel_ksplit(ConstMatrixView a, ConstMatrixView b,
                             const PackedA* packed_a, const PackedB* packed_b,
                             MatrixView c, const Plan& plan,
                             common::ThreadPool& pool) {
  const GemmConfig& cfg = plan.config();
  const int mi = ceil_div(plan.m(), cfg.mc);
  const int nj = ceil_div(plan.n(), cfg.nc);
  const int kp = ceil_div(plan.k(), cfg.kc);
  const int slices = std::min(static_cast<int>(pool.participants()), kp);
  const int m = plan.m(), n = plan.n();
  const std::size_t csize = static_cast<std::size_t>(m) * n;
  common::AlignedBuffer partials(csize * static_cast<std::size_t>(slices));
  std::vector<Scratch> scratch = make_scratch(plan, pool);

  // Slice s owns K blocks [s*kp/slices, (s+1)*kp/slices).
  const auto slice_begin = [kp, slices](int s) {
    return static_cast<int>(static_cast<long>(s) * kp / slices);
  };

  const int blocks = mi * nj;
  obs::SpanScope span("gemm.ksplit", static_cast<unsigned>(slices),
                      static_cast<unsigned>(kp));
  const bool traced = obs::trace_enabled();
  pool.parallel_for(slices * blocks, [&](int task) {
    const int s = task / blocks;
    const int bi = (task % blocks) / nj;
    const int bj = (task % blocks) % nj;
    MatrixView partial{partials.data() + csize * s, m, n, n};
    const int slot = worker_slot(pool);
    if (traced) obs::name_this_lane_worker(slot, pool.participants());
    obs::SpanScope slice_span("ksplit.slice", static_cast<unsigned>(s),
                              static_cast<unsigned>(task % blocks));
    Scratch& sc = scratch[slot];
    for (int bp = slice_begin(s); bp < slice_begin(s + 1); ++bp)
      block_step(a, b, packed_a, packed_b, partial, plan, sc, bi, bj, bp);
  });

  // Reduction, parallel over C rows: partials fold pairwise with stride
  // doubling (0 += 1, 2 += 3, ..., then 0 += 2, ...), then C += partial 0.
  // The fold order is fixed by `slices` alone.
  pool.parallel_for(m, [&](int r) {
    if (traced) obs::name_this_lane_worker(worker_slot(pool),
                                           pool.participants());
    obs::SpanScope reduce_span("reduce", static_cast<unsigned>(r),
                               static_cast<unsigned>(slices));
    const std::size_t row = static_cast<std::size_t>(r) * n;
    for (int stride = 1; stride < slices; stride *= 2) {
      for (int s = 0; s + stride < slices; s += 2 * stride) {
        float* dst = partials.data() + csize * s + row;
        const float* src = partials.data() + csize * (s + stride) + row;
        for (int j = 0; j < n; ++j) dst[j] += src[j];
      }
    }
    float* crow = c.data + static_cast<long>(r) * c.ld;
    const float* prow = partials.data() + row;
    for (int j = 0; j < n; ++j) crow[j] += prow[j];
  });
}

void execute(ConstMatrixView a, ConstMatrixView b, const PackedA* packed_a,
             const PackedB* packed_b, MatrixView c, const Plan& plan,
             common::ThreadPool* pool) {
  if (pool == nullptr || pool->size() <= 1) {
    execute_single(a, b, packed_a, packed_b, c, plan);
    return;
  }
  if (choose_parallel_strategy(plan, pool->size()) ==
      ParallelStrategy::kKSplit) {
    try {
      execute_parallel_ksplit(a, b, packed_a, packed_b, c, plan, *pool);
      return;
    } catch (const std::bad_alloc&) {
      // The per-slice partial-C accumulators did not fit in memory; the
      // blocks-only schedule needs no extra C storage. Falling back is
      // safe because k-split touches C only in its reduction phase, which
      // runs strictly after the (allocating) setup succeeded.
    }
  }
  execute_parallel_blocks(a, b, packed_a, packed_b, c, plan, *pool);
}

void check_shapes(ConstMatrixView a, ConstMatrixView b, MatrixView c,
                  const Plan& plan) {
  if (a.rows != plan.m() || a.cols != plan.k() || b.rows != plan.k() ||
      b.cols != plan.n() || c.rows != plan.m() || c.cols != plan.n())
    throw std::invalid_argument("gemm: views do not match the plan's shape");
}

}  // namespace

ParallelStrategy choose_parallel_strategy(const Plan& plan, unsigned workers) {
  const GemmConfig& cfg = plan.config();
  const int mi = ceil_div(plan.m(), cfg.mc);
  const int nj = ceil_div(plan.n(), cfg.nc);
  const int kp = ceil_div(plan.k(), cfg.kc);
  // With a single K block there is nothing to slice — even a forced
  // k-split degrades to the blocks schedule rather than spending a
  // partial-C buffer on a no-op reduction.
  if (kp < 2) return ParallelStrategy::kBlocksOnly;
  if (cfg.parallel_strategy != ParallelStrategy::kAuto)
    return cfg.parallel_strategy;
  const int participants = static_cast<int>(workers) + 1;  // pool + caller
  // Enough C blocks to keep every lane busy with slack for load imbalance:
  // the paper's scheme is strictly cheaper (no partial buffers, no
  // reduction pass), so prefer it whenever it can saturate the pool.
  if (mi * nj >= 2 * participants) return ParallelStrategy::kBlocksOnly;
  const int slices = std::min(participants, kp);
  // The partial-C accumulators are the price of k-split; if they overflow
  // the last-level cache the reduction traffic eats the win.
  const std::size_t footprint =
      static_cast<std::size_t>(plan.m()) * plan.n() * sizeof(float) * slices;
  const long budget =
      cfg.hw.caches.empty() ? (32l << 20) : cfg.hw.caches.back().size_bytes;
  if (footprint > static_cast<std::size_t>(budget))
    return ParallelStrategy::kBlocksOnly;
  return ParallelStrategy::kKSplit;
}

PackedB::PackedB(ConstMatrixView b, const Plan& plan) {
  const GemmConfig& cfg = plan.config();
  kblocks_ = ceil_div(plan.k(), cfg.kc);
  nblocks_ = ceil_div(plan.n(), cfg.nc);
  ld_ = cfg.nc;
  // Uninitialized storage: pack_block overwrites every interior element,
  // so only the padding edges of partial blocks need explicit zeroing
  // (a whole-buffer zero-fill wrote the packed size twice).
  data_ = common::AlignedBuffer(
      common::kUninitialized,
      static_cast<std::size_t>(kblocks_) * nblocks_ * cfg.kc * cfg.nc);
  offsets_.resize(static_cast<std::size_t>(kblocks_) * nblocks_);
  std::size_t off = 0;
  for (int bp = 0; bp < kblocks_; ++bp) {
    for (int bj = 0; bj < nblocks_; ++bj) {
      const int p0 = bp * cfg.kc, j0 = bj * cfg.nc;
      const int bk = std::min(cfg.kc, b.rows - p0);
      const int bn = std::min(cfg.nc, b.cols - j0);
      offsets_[static_cast<std::size_t>(bp) * nblocks_ + bj] = off;
      float* dst = data_.data() + off;
      kernels::pack_block(b.block(p0, j0, bk, bn), dst, ld_);
      if (bn < cfg.nc)
        for (int r = 0; r < bk; ++r)
          std::memset(dst + static_cast<long>(r) * ld_ + bn, 0,
                      static_cast<std::size_t>(cfg.nc - bn) * sizeof(float));
      if (bk < cfg.kc)
        std::memset(dst + static_cast<long>(bk) * ld_, 0,
                    static_cast<std::size_t>(cfg.kc - bk) * cfg.nc *
                        sizeof(float));
      off += static_cast<std::size_t>(cfg.kc) * cfg.nc;
    }
  }
}

const float* PackedB::block(int p_idx, int j_idx) const {
  return data_.data() +
         offsets_[static_cast<std::size_t>(p_idx) * nblocks_ + j_idx];
}

PackedA::PackedA(ConstMatrixView a, const Plan& plan) {
  const GemmConfig& cfg = plan.config();
  mblocks_ = ceil_div(plan.m(), cfg.mc);
  kblocks_ = ceil_div(plan.k(), cfg.kc);
  ld_ = cfg.kc;
  // Same padding-only zeroing as PackedB (see the note there).
  data_ = common::AlignedBuffer(
      common::kUninitialized,
      static_cast<std::size_t>(mblocks_) * kblocks_ * cfg.mc * cfg.kc);
  offsets_.resize(static_cast<std::size_t>(mblocks_) * kblocks_);
  std::size_t off = 0;
  for (int bi = 0; bi < mblocks_; ++bi) {
    for (int bp = 0; bp < kblocks_; ++bp) {
      const int i0 = bi * cfg.mc, p0 = bp * cfg.kc;
      const int bm = std::min(cfg.mc, a.rows - i0);
      const int bk = std::min(cfg.kc, a.cols - p0);
      offsets_[static_cast<std::size_t>(bi) * kblocks_ + bp] = off;
      float* dst = data_.data() + off;
      kernels::pack_block(a.block(i0, p0, bm, bk), dst, ld_);
      if (bk < cfg.kc)
        for (int r = 0; r < bm; ++r)
          std::memset(dst + static_cast<long>(r) * ld_ + bk, 0,
                      static_cast<std::size_t>(cfg.kc - bk) * sizeof(float));
      if (bm < cfg.mc)
        std::memset(dst + static_cast<long>(bm) * ld_, 0,
                    static_cast<std::size_t>(cfg.mc - bm) * cfg.kc *
                        sizeof(float));
      off += static_cast<std::size_t>(cfg.mc) * cfg.kc;
    }
  }
}

const float* PackedA::block(int i_idx, int p_idx) const {
  return data_.data() +
         offsets_[static_cast<std::size_t>(i_idx) * kblocks_ + p_idx];
}

namespace {

Status check_packable(common::ConstMatrixView v, int want_rows, int want_cols,
                      const char* who) {
  if (v.rows != want_rows || v.cols != want_cols)
    return InvalidArgumentError(std::string(who) +
                                ": view shape does not match the plan");
  if (v.ld < v.cols)
    return InvalidArgumentError(std::string(who) +
                                ": leading dimension below row width");
  if (v.data == nullptr && v.rows > 0 && v.cols > 0)
    return InvalidArgumentError(std::string(who) + ": null data pointer");
  return Status::OK();
}

}  // namespace

StatusOr<PackedB> PackedB::create(ConstMatrixView b, const Plan& plan) {
  AUTOGEMM_RETURN_IF_ERROR(check_packable(b, plan.k(), plan.n(), "PackedB"));
  try {
    return PackedB(b, plan);
  } catch (const std::bad_alloc&) {
    return ResourceExhaustedError("PackedB: allocation failed");
  }
}

StatusOr<PackedA> PackedA::create(ConstMatrixView a, const Plan& plan) {
  AUTOGEMM_RETURN_IF_ERROR(check_packable(a, plan.m(), plan.k(), "PackedA"));
  try {
    return PackedA(a, plan);
  } catch (const std::bad_alloc&) {
    return ResourceExhaustedError("PackedA: allocation failed");
  }
}

void gemm(ConstMatrixView a, ConstMatrixView b, MatrixView c, const Plan& plan,
          common::ThreadPool* pool) {
  check_shapes(a, b, c, plan);
  execute(a, b, nullptr, nullptr, c, plan, pool);
}

void gemm(ConstMatrixView a, const PackedB& packed_b,
          ConstMatrixView b_shape, MatrixView c, const Plan& plan,
          common::ThreadPool* pool) {
  check_shapes(a, b_shape, c, plan);
  execute(a, b_shape, nullptr, &packed_b, c, plan, pool);
}

void gemm(const PackedA& packed_a, ConstMatrixView a_shape, ConstMatrixView b,
          MatrixView c, const Plan& plan, common::ThreadPool* pool) {
  check_shapes(a_shape, b, c, plan);
  execute(a_shape, b, &packed_a, nullptr, c, plan, pool);
}

void gemm(ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  default_context().gemm(a, b, c);
}

void gemm_overwrite(ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  GemmExParams params;
  params.beta = 0.0f;  // overwrite == the BLAS beta = 0 case, defined once
  default_context().gemm(a, b, c, params);
}

namespace detail {

void gemm_group_serial(const GroupMember* members, std::size_t count,
                       const PackedA* packed_a, const PackedB* packed_b,
                       const Plan& plan, std::size_t* began) {
  if (began != nullptr) *began = 0;
  if (count == 0) return;
  obs::SpanScope span("gemm.group", static_cast<unsigned>(count),
                      static_cast<unsigned>(plan.m()));
  Scratch scratch(plan);
  for (std::size_t i = 0; i < count; ++i) {
    const GroupMember& m = members[i];
    check_shapes(m.a, m.b, m.c, plan);
    if (began != nullptr) *began = i + 1;
    // The scratch's packed-block ids describe the previous member's
    // operand buffers; invalidate them so a block packed from member
    // i-1's matrix is never reused for member i.
    scratch.a_block_i = scratch.a_block_p = -1;
    scratch.b_block_p = scratch.b_block_j = -1;
    run_member(m.a, m.b, packed_a, packed_b, m.c, plan, scratch);
  }
}

}  // namespace detail

}  // namespace autogemm
