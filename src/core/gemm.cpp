#include "core/gemm.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <string>

#include "common/aligned_buffer.hpp"
#include "core/context.hpp"
#include "kernels/dispatch.hpp"
#include "kernels/packing.hpp"

namespace autogemm {
namespace {

using common::ConstMatrixView;
using common::MatrixView;

int ceil_div(int a, int b) { return (a + b - 1) / b; }

// Executes every micro-tile of one cache block. a/b point at the block
// origin (packed scratch or a window into the source matrices).
void run_block(const tiling::TilingResult& tiles, const float* a, long lda,
               const float* b, long ldb, float* c, long ldc, int bk) {
  for (const auto& t : tiles.tiles) {
    kernels::run_tile(t.rows_used, t.cols_used,
                      a + static_cast<long>(t.row) * lda, lda, b + t.col, ldb,
                      c + static_cast<long>(t.row) * ldc + t.col, ldc, bk);
  }
}

// Per-worker scratch for online packing, reused across blocks.
struct Scratch {
  common::AlignedBuffer a_buf;
  common::AlignedBuffer b_buf;
  int a_block_i = -1, a_block_p = -1;  // ids of currently packed blocks
  int b_block_p = -1, b_block_j = -1;

  Scratch(const Plan& plan)
      : a_buf(static_cast<std::size_t>(plan.config().mc) * plan.config().kc),
        b_buf(static_cast<std::size_t>(plan.config().kc) * plan.config().nc) {}
};

// One (i, j, p) cache-block step of the blocked loop nest. Either operand
// may come pre-packed (offline); the others fall back to the plan's
// sigma_packing (online scratch or direct strided views).
void block_step(ConstMatrixView a, ConstMatrixView b, const PackedA* packed_a,
                const PackedB* packed_b, MatrixView c, const Plan& plan,
                Scratch& scratch, int bi, int bj, int bp) {
  const GemmConfig& cfg = plan.config();
  const int i0 = bi * cfg.mc, j0 = bj * cfg.nc, p0 = bp * cfg.kc;
  const int bm = std::min(cfg.mc, a.rows - i0);
  const int bn = std::min(cfg.nc, b.cols - j0);
  const int bk = std::min(cfg.kc, a.cols - p0);

  const float* a_ptr;
  long lda;
  const float* b_ptr;
  long ldb;
  const bool pack = cfg.packing == kernels::Packing::kOnline;
  if (packed_a != nullptr) {
    a_ptr = packed_a->block(bi, bp);
    lda = packed_a->block_ld();
  } else if (pack) {
    if (scratch.a_block_i != bi || scratch.a_block_p != bp) {
      kernels::pack_block(a.block(i0, p0, bm, bk), scratch.a_buf.data(), bk);
      scratch.a_block_i = bi;
      scratch.a_block_p = bp;
    }
    a_ptr = scratch.a_buf.data();
    lda = bk;
  } else {
    a_ptr = a.data + static_cast<long>(i0) * a.ld + p0;
    lda = a.ld;
  }
  if (packed_b != nullptr) {
    b_ptr = packed_b->block(bp, bj);
    ldb = packed_b->block_ld();
  } else if (pack) {
    if (scratch.b_block_p != bp || scratch.b_block_j != bj) {
      kernels::pack_block(b.block(p0, j0, bk, bn), scratch.b_buf.data(), bn);
      scratch.b_block_p = bp;
      scratch.b_block_j = bj;
    }
    b_ptr = scratch.b_buf.data();
    ldb = bn;
  } else {
    b_ptr = b.data + static_cast<long>(p0) * b.ld + j0;
    ldb = b.ld;
  }

  float* c_ptr = c.data + static_cast<long>(i0) * c.ld + j0;
  run_block(plan.block_tiling(bm, bn, bk), a_ptr, lda, b_ptr, ldb, c_ptr, c.ld,
            bk);
}

// Maps the loop order to a (dim0, dim1, dim2) permutation of (M, N, K)
// block indices; dimension codes: 0 = i (M), 1 = j (N), 2 = p (K).
std::array<int, 3> order_permutation(LoopOrder order) {
  switch (order) {
    case LoopOrder::kNKM: return {1, 2, 0};
    case LoopOrder::kNMK: return {1, 0, 2};
    case LoopOrder::kKNM: return {2, 1, 0};
    case LoopOrder::kKMN: return {2, 0, 1};
    case LoopOrder::kMNK: return {0, 1, 2};
    case LoopOrder::kMKN: return {0, 2, 1};
  }
  return {1, 2, 0};
}

void execute_single(ConstMatrixView a, ConstMatrixView b,
                    const PackedA* packed_a, const PackedB* packed_b,
                    MatrixView c, const Plan& plan) {
  const GemmConfig& cfg = plan.config();
  const int nblk[3] = {ceil_div(plan.m(), cfg.mc), ceil_div(plan.n(), cfg.nc),
                       ceil_div(plan.k(), cfg.kc)};
  const auto perm = order_permutation(cfg.loop_order);
  Scratch scratch(plan);
  int idx[3];  // block index per dimension code
  for (int x = 0; x < nblk[perm[0]]; ++x) {
    for (int y = 0; y < nblk[perm[1]]; ++y) {
      for (int z = 0; z < nblk[perm[2]]; ++z) {
        idx[perm[0]] = x;
        idx[perm[1]] = y;
        idx[perm[2]] = z;
        block_step(a, b, packed_a, packed_b, c, plan, scratch, idx[0], idx[1],
                   idx[2]);
      }
    }
  }
}

void execute_parallel(ConstMatrixView a, ConstMatrixView b,
                      const PackedA* packed_a, const PackedB* packed_b,
                      MatrixView c, const Plan& plan,
                      common::ThreadPool& pool) {
  const GemmConfig& cfg = plan.config();
  const int mi = ceil_div(plan.m(), cfg.mc);
  const int nj = ceil_div(plan.n(), cfg.nc);
  const int kp = ceil_div(plan.k(), cfg.kc);
  // C blocks are the scheduling unit; each worker runs the full K loop for
  // its blocks (K is never split across threads — the paper's limitation,
  // which is why large-K layers like ResNet L7/L12/L17/L20 scale poorly).
  pool.parallel_for(mi * nj, [&](int block) {
    const int bi = block / nj;
    const int bj = block % nj;
    Scratch scratch(plan);
    for (int bp = 0; bp < kp; ++bp)
      block_step(a, b, packed_a, packed_b, c, plan, scratch, bi, bj, bp);
  });
}

void execute(ConstMatrixView a, ConstMatrixView b, const PackedA* packed_a,
             const PackedB* packed_b, MatrixView c, const Plan& plan,
             common::ThreadPool* pool) {
  if (pool != nullptr && pool->size() > 1) {
    execute_parallel(a, b, packed_a, packed_b, c, plan, *pool);
  } else {
    execute_single(a, b, packed_a, packed_b, c, plan);
  }
}

void check_shapes(ConstMatrixView a, ConstMatrixView b, MatrixView c,
                  const Plan& plan) {
  if (a.rows != plan.m() || a.cols != plan.k() || b.rows != plan.k() ||
      b.cols != plan.n() || c.rows != plan.m() || c.cols != plan.n())
    throw std::invalid_argument("gemm: views do not match the plan's shape");
}

}  // namespace

PackedB::PackedB(ConstMatrixView b, const Plan& plan) {
  const GemmConfig& cfg = plan.config();
  kblocks_ = ceil_div(plan.k(), cfg.kc);
  nblocks_ = ceil_div(plan.n(), cfg.nc);
  ld_ = cfg.nc;
  data_.assign(static_cast<std::size_t>(kblocks_) * nblocks_ * cfg.kc * cfg.nc,
               0.0f);
  offsets_.resize(static_cast<std::size_t>(kblocks_) * nblocks_);
  std::size_t off = 0;
  for (int bp = 0; bp < kblocks_; ++bp) {
    for (int bj = 0; bj < nblocks_; ++bj) {
      const int p0 = bp * cfg.kc, j0 = bj * cfg.nc;
      const int bk = std::min(cfg.kc, b.rows - p0);
      const int bn = std::min(cfg.nc, b.cols - j0);
      offsets_[static_cast<std::size_t>(bp) * nblocks_ + bj] = off;
      kernels::pack_block(b.block(p0, j0, bk, bn), data_.data() + off, ld_);
      off += static_cast<std::size_t>(cfg.kc) * cfg.nc;
    }
  }
}

const float* PackedB::block(int p_idx, int j_idx) const {
  return data_.data() +
         offsets_[static_cast<std::size_t>(p_idx) * nblocks_ + j_idx];
}

PackedA::PackedA(ConstMatrixView a, const Plan& plan) {
  const GemmConfig& cfg = plan.config();
  mblocks_ = ceil_div(plan.m(), cfg.mc);
  kblocks_ = ceil_div(plan.k(), cfg.kc);
  ld_ = cfg.kc;
  data_.assign(static_cast<std::size_t>(mblocks_) * kblocks_ * cfg.mc * cfg.kc,
               0.0f);
  offsets_.resize(static_cast<std::size_t>(mblocks_) * kblocks_);
  std::size_t off = 0;
  for (int bi = 0; bi < mblocks_; ++bi) {
    for (int bp = 0; bp < kblocks_; ++bp) {
      const int i0 = bi * cfg.mc, p0 = bp * cfg.kc;
      const int bm = std::min(cfg.mc, a.rows - i0);
      const int bk = std::min(cfg.kc, a.cols - p0);
      offsets_[static_cast<std::size_t>(bi) * kblocks_ + bp] = off;
      kernels::pack_block(a.block(i0, p0, bm, bk), data_.data() + off, ld_);
      off += static_cast<std::size_t>(cfg.mc) * cfg.kc;
    }
  }
}

const float* PackedA::block(int i_idx, int p_idx) const {
  return data_.data() +
         offsets_[static_cast<std::size_t>(i_idx) * kblocks_ + p_idx];
}

namespace {

Status check_packable(common::ConstMatrixView v, int want_rows, int want_cols,
                      const char* who) {
  if (v.rows != want_rows || v.cols != want_cols)
    return InvalidArgumentError(std::string(who) +
                                ": view shape does not match the plan");
  if (v.ld < v.cols)
    return InvalidArgumentError(std::string(who) +
                                ": leading dimension below row width");
  if (v.data == nullptr && v.rows > 0 && v.cols > 0)
    return InvalidArgumentError(std::string(who) + ": null data pointer");
  return Status::OK();
}

}  // namespace

StatusOr<PackedB> PackedB::create(ConstMatrixView b, const Plan& plan) {
  AUTOGEMM_RETURN_IF_ERROR(check_packable(b, plan.k(), plan.n(), "PackedB"));
  try {
    return PackedB(b, plan);
  } catch (const std::bad_alloc&) {
    return ResourceExhaustedError("PackedB: allocation failed");
  }
}

StatusOr<PackedA> PackedA::create(ConstMatrixView a, const Plan& plan) {
  AUTOGEMM_RETURN_IF_ERROR(check_packable(a, plan.m(), plan.k(), "PackedA"));
  try {
    return PackedA(a, plan);
  } catch (const std::bad_alloc&) {
    return ResourceExhaustedError("PackedA: allocation failed");
  }
}

void gemm(ConstMatrixView a, ConstMatrixView b, MatrixView c, const Plan& plan,
          common::ThreadPool* pool) {
  check_shapes(a, b, c, plan);
  execute(a, b, nullptr, nullptr, c, plan, pool);
}

void gemm(ConstMatrixView a, const PackedB& packed_b,
          ConstMatrixView b_shape, MatrixView c, const Plan& plan,
          common::ThreadPool* pool) {
  check_shapes(a, b_shape, c, plan);
  execute(a, b_shape, nullptr, &packed_b, c, plan, pool);
}

void gemm(const PackedA& packed_a, ConstMatrixView a_shape, ConstMatrixView b,
          MatrixView c, const Plan& plan, common::ThreadPool* pool) {
  check_shapes(a_shape, b, c, plan);
  execute(a_shape, b, &packed_a, nullptr, c, plan, pool);
}

void gemm(ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  default_context().gemm(a, b, c);
}

void gemm_overwrite(ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  GemmExParams params;
  params.beta = 0.0f;  // overwrite == the BLAS beta = 0 case, defined once
  default_context().gemm(a, b, c, params);
}

}  // namespace autogemm
