// autogemm::Context — the runtime layer of the public API.
//
// The paper's deployment model ("optimal parameters are tuned ahead of
// time per shape, then baked into the library", §IV-C) assumes per-shape
// work is amortized across calls. Context is where that amortization
// lives for a process serving repeated GEMM traffic:
//
//   * a thread-safe, shape-keyed LRU cache of Plan objects, so DMT tiling
//     and hardware-model costing run once per distinct (M, N, K);
//   * an LRU cache of offline-packed constant operands (PackedA/PackedB),
//     keyed by the operand's data pointer and shape, so a DNN's weight
//     matrices are packed once and reused every inference;
//   * optional tune::TuningRecords backing: a context constructed with a
//     records file resolves each incoming shape to its tuned GemmConfig
//     (exact match first, then nearest-shape fallback) before falling back
//     to the default_config heuristic;
//   * an owned persistent ThreadPool, so callers stop threading pool
//     pointers through every call.
//
// ## Hardened runtime: Status, verification, quarantine
//
// Context::run is the primary entry point and reports through
// autogemm::Status: operand validation (dimensions, leading dims, null and
// aliased pointers, non-finite alpha/beta — see common/status.hpp for the
// NaN/Inf policy), well-defined degenerate shapes (M/N/K of zero), and a
// degradation ladder that keeps answers correct when parts of the stack
// misbehave:
//
//   1. On the first use of each distinct GemmConfig, a probe GEMM runs the
//      generated-kernel path (codegen + sim::Interpreter, watchdogged) and
//      the portable kernels:: micro-kernel against common::reference_gemm.
//   2. A probe fault or miscompare quarantines that config; resolution
//      retries with the next candidate (tuned -> heuristic). Tuned records
//      transferred across shapes/machines can be stale or invalid — this
//      is where that is caught instead of assumed away.
//   3. If every candidate is quarantined, the shape is pinned to the
//      reference path: slow, but never wrong.
//   4. Runtime faults degrade too: a scratch allocation failure on the
//      serial path falls back to the reference kernel mid-call; a worker
//      exception quarantines the pool (subsequent calls run serial) and
//      reports kInternal for the affected call.
//
// Everything the ladder does is observable through health(); the legacy
// void API (Context::gemm and the free functions) wraps run() and records
// failures in a queryable last_error() instead of throwing.
//
// Packed-operand caching is keyed by pointer identity: the cache cannot
// see through the pointer, so callers that mutate or free a cached
// operand must call invalidate(ptr) (or clear()) before the next gemm on
// that buffer. This is the standard contract for prepacked-weight APIs.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "backend/backend_id.hpp"
#include "common/dtype.hpp"
#include "common/matrix.hpp"
#include "common/status.hpp"
#include "common/threadpool.hpp"
#include "core/batched.hpp"
#include "core/gemm.hpp"
#include "core/gemm_ex.hpp"
#include "tune/records.hpp"

namespace autogemm::obs {
class Histogram;
}  // namespace autogemm::obs

namespace autogemm::quant {
class QPackedB;
struct QGemmOptions;
}  // namespace autogemm::quant

namespace autogemm::sim {
struct SimOptions;
}  // namespace autogemm::sim

namespace autogemm {

/// Watchdog budgets for the simulation machinery a context drives. PR 2's
/// anti-hang hardening introduced the budgets but hard-coded them; making
/// them options lets the chaos harness tighten them at runtime (forcing
/// kDeadlineExceeded probe outcomes and the quarantine ladder) without
/// recompiling, and lets a paranoid embedder loosen them for giant tiles.
struct WatchdogBudgets {
  /// sim::Interpreter dynamic-instruction budget for each first-use
  /// verification probe of a generated kernel (the only simulator the
  /// execution path itself drives). A probe that exceeds it reports
  /// kDeadlineExceeded and quarantines the config, exactly like a
  /// miscompare.
  long probe_max_steps = 2'000'000;
  /// Budgets stamped into Context::pipeline_options() for callers that
  /// price shapes through sim::simulate_checked under this context's
  /// policy (the CLI and benches; the GEMM execution path never runs the
  /// pipeline simulator).
  long sim_max_dynamic_instructions = 20'000'000;
  double sim_max_cycles = 0;  ///< 0 = unlimited
};

struct ContextOptions {
  /// Max distinct shapes whose Plans stay cached (LRU beyond that).
  std::size_t plan_capacity = 256;
  /// Max packed constant operands kept (LRU beyond that).
  std::size_t packed_capacity = 64;
  /// Worker threads for the owned pool: 0 = hardware_concurrency,
  /// 1 = serial (no pool is created).
  unsigned threads = 0;
  /// Best-effort CPU affinity for the owned pool's workers (empty = none).
  /// The sharded serving layer assigns each shard's context a core slice
  /// from the hw:: topology model so one shard's packing/kernel work stays
  /// inside its NUMA/CMG domain; correctness never depends on it.
  std::vector<int> pool_pin_cpus;
  /// Optional tuned-parameter table (see tune/records.hpp); empty = none.
  std::string records_path;
  /// Parallel scheduling policy for pooled execution. kAuto defers to the
  /// per-plan choice (tuned records may carry a strategy; otherwise
  /// choose_parallel_strategy picks per shape and pool size); any other
  /// value overrides every plan this context resolves.
  ParallelStrategy parallel_strategy = ParallelStrategy::kAuto;
  /// First-use verification of each distinct GemmConfig against the
  /// reference GEMM (the quarantine ladder above). Costs one tile-sized
  /// probe per distinct config; disable only for benchmarking the
  /// unhardened path.
  bool verify_kernels = true;
  /// Probe depth (K) for first-use verification.
  int probe_kc = 8;
  /// Kernel backend every plan this context resolves is generated,
  /// verified and priced against. kAuto consults the AUTOGEMM_BACKEND
  /// environment variable, then falls back to the highest-priority
  /// host-executable backend (NEON today — bitwise-identical to the
  /// pre-registry library). An explicit id must be registered; the
  /// constructor throws std::out_of_range otherwise.
  backend::BackendId backend = backend::BackendId::kAuto;
  /// Turns on the process-wide obs tracer (obs/trace.hpp) at construction
  /// — equivalent to exporting AUTOGEMM_TRACE=1. Spans from every run*
  /// land in per-thread ring buffers for Chrome-trace export. The flag is
  /// global by design (traces interleave all contexts); a context never
  /// turns tracing *off* for others.
  bool trace = false;
  /// Watchdog budgets (see WatchdogBudgets): interpreter probe step limit
  /// and the pipeline-sim budgets pipeline_options() hands out.
  WatchdogBudgets watchdog;
};

/// Monotonic cache counters (see Context::stats); the cache hit-rate bench
/// reports these as JSON.
struct ContextStats {
  std::uint64_t plan_hits = 0;
  std::uint64_t plan_misses = 0;
  std::uint64_t plan_evictions = 0;
  std::uint64_t packed_hits = 0;
  std::uint64_t packed_misses = 0;
  std::uint64_t packed_evictions = 0;
  std::uint64_t packed_invalidations = 0;
  /// Plans dropped by shape: explicit invalidate_plan() calls plus entries
  /// evicted by publish_record() so the published config takes effect.
  /// Stale-generation re-resolves (a cache hit observing a newer records
  /// generation) count as plan_misses, not invalidations.
  std::uint64_t plan_invalidations = 0;
  /// How plan configs were resolved on miss: tuned record (exact shape),
  /// tuned record (nearest shape), or the default_config heuristic.
  std::uint64_t resolved_exact = 0;
  std::uint64_t resolved_nearest = 0;
  std::uint64_t resolved_heuristic = 0;
  /// How plan-driven calls were scheduled: serial (no pool, pool retired,
  /// or reference-pinned), blocks-only C-block parallelism, or the
  /// k-split partial-C path. One increment per execute, so the split of
  /// traffic between strategies is directly readable.
  std::uint64_t strategy_serial = 0;
  std::uint64_t strategy_blocks = 0;
  std::uint64_t strategy_ksplit = 0;
};

/// One degradation event (see Context::health). Kept as a bounded log of
/// human-readable entries; counters summarize the totals.
struct HealthEvent {
  enum class Kind {
    kQuarantine,         ///< a config failed verification and was retired
    kReferenceFallback,  ///< a shape was pinned to the reference path
    kAllocFallback,      ///< one call served by reference after bad_alloc
    kPoolDegraded,       ///< worker fault; pool retired, now serial
    kRecordsDamaged,     ///< corrupt lines skipped while loading records
  };
  Kind kind;
  std::string detail;
};

/// Snapshot of the context's degradation state: "is this process serving
/// full-speed, degraded, or limping" — the query a service health endpoint
/// forwards to.
struct HealthReport {
  /// True when any degradation event has been recorded.
  bool degraded = false;
  /// First-use verification probes executed / failed.
  std::uint64_t probes = 0;
  std::uint64_t probe_failures = 0;
  /// Distinct GemmConfigs currently quarantined.
  std::uint64_t quarantined_configs = 0;
  /// Shapes pinned to the reference path (every candidate quarantined).
  std::uint64_t reference_shapes = 0;
  /// Calls served by the reference path after a scratch-allocation failure.
  std::uint64_t alloc_fallbacks = 0;
  /// True when a worker fault retired the pool (calls now run serial).
  bool pool_degraded = false;
  /// Corrupt lines skipped while loading the records file.
  std::uint64_t records_skipped = 0;
  /// Scheduling of the most recent plan-driven call: "serial",
  /// "blocks-only", "k-split", or "none" before any call ran (see the
  /// strategy_* counters in ContextStats for totals).
  std::string last_parallel_strategy = "none";
  /// Most recent non-OK status any entry point reported (by any thread;
  /// Context::last_error() is the per-thread view).
  Status last_error;
  /// Bounded event log, oldest first (capped; counters stay exact).
  std::vector<HealthEvent> events;
};

class Context {
 public:
  Context();
  explicit Context(const ContextOptions& opts);
  /// Convenience: default options + tuned records loaded from `records_path`
  /// (throws std::runtime_error if the file cannot be read; a *damaged* but
  /// readable file loads its valid records and shows up in health()).
  explicit Context(const std::string& records_path);
  /// Tuned records handed over directly (e.g. straight from a tuning run).
  explicit Context(tune::TuningRecords records, const ContextOptions& opts = {});
  ~Context();

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  /// Primary entry point: C = alpha * op(A) * op(B) + beta * C with the
  /// shape's cached (tuned or heuristic) Plan and the owned pool, behind
  /// full operand validation and the degradation ladder documented above.
  /// On a non-OK return C is either untouched (validation errors) or
  /// explicitly unspecified (kResourceExhausted/kInternal from a fault
  /// mid-parallel-execution; the message says so).
  Status run(common::ConstMatrixView a, common::ConstMatrixView b,
             common::MatrixView c, const GemmExParams& params = {});

  /// As run(), with A promised constant across calls: its offline-packed
  /// form (PackedA) is cached under A's data pointer + shape. The cached
  /// fast path requires canonical operands (no transposes, alpha = 1);
  /// other params fall back to the plain run() path. Conv-as-GEMM weight
  /// matrices are the motivating caller.
  Status run_const_a(common::ConstMatrixView a, common::ConstMatrixView b,
                     common::MatrixView c, const GemmExParams& params = {});

  /// As run(), with B promised constant across calls (cached PackedB).
  Status run_const_b(common::ConstMatrixView a, common::ConstMatrixView b,
                     common::MatrixView c, const GemmExParams& params = {});

  /// Quantized int8 entry point: C = alpha * deq(q(A) * q(B)) + beta * C
  /// with symmetric per-channel int8 quantization of both fp32 operands
  /// and exact int32 accumulation (quant/qgemm.hpp; the accuracy contract
  /// — relative Frobenius error <= 1e-2 vs an fp64 reference — lives
  /// there). No transposes: operands are taken canonical. Shares the obs
  /// accounting of run() plus the dtype-labeled latency twin
  /// autogemm_gemm_seconds{shape=...,dtype="i8"}.
  Status run_i8(common::ConstMatrixView a, common::ConstMatrixView b,
                common::MatrixView c, float alpha = 1.0f, float beta = 1.0f);

  /// As run_i8(), with B promised constant across calls: its quantized
  /// packed form (quant::QPackedB — int8 blocks + per-column scales) is
  /// cached in the same pointer-keyed LRU as the fp32 PackedA/PackedB
  /// entries, under the same invalidate(ptr)/clear() contract. fp32 and
  /// int8 packings of the same buffer coexist (the cache key carries the
  /// dtype), so a weight matrix served at both precisions packs once per
  /// tier. DNN weight matrices served at int8 are the motivating caller.
  Status run_const_b_i8(common::ConstMatrixView a, common::ConstMatrixView b,
                        common::MatrixView c, float alpha = 1.0f,
                        float beta = 1.0f);

  /// Legacy void wrappers over the run* entry points: failures are
  /// recorded in last_error() instead of thrown (C stays untouched on
  /// validation failures).
  void gemm(common::ConstMatrixView a, common::ConstMatrixView b,
            common::MatrixView c, const GemmExParams& params = {});
  void gemm_const_a(common::ConstMatrixView a, common::ConstMatrixView b,
                    common::MatrixView c, const GemmExParams& params = {});
  void gemm_const_b(common::ConstMatrixView a, common::ConstMatrixView b,
                    common::MatrixView c, const GemmExParams& params = {});
  void gemm_i8(common::ConstMatrixView a, common::ConstMatrixView b,
               common::MatrixView c, float alpha = 1.0f, float beta = 1.0f);
  void gemm_const_b_i8(common::ConstMatrixView a, common::ConstMatrixView b,
                       common::MatrixView c, float alpha = 1.0f,
                       float beta = 1.0f);

  /// C_i += A_i * B_i for every item through the cached per-shape plans
  /// and the owned pool. The whole batch is validated up front
  /// (per-member operands plus cross-member aliasing — see
  /// validate_batch in core/batched.hpp) before any C is written;
  /// kInvalidArgument leaves every C untouched. Degenerate members
  /// (M, N or K of zero) are well-defined accumulate no-ops. Same-shape
  /// members that share an A (or B) operand amortize packing: the shared
  /// operand is packed once for the group and reused by every member —
  /// the serve engine's shape-bucketed streams are the motivating
  /// traffic. Each member runs single-threaded inside the batch-level
  /// parallel_for; quarantine/reference pins and the degradation ladder
  /// apply per shape exactly as in run().
  Status run_batched(const std::vector<BatchItem>& items);

  /// run_batched minus the whole-batch validation pass, for callers that
  /// have already established the batch invariants (per-member validity
  /// via validate_batch_item and cross-member disjointness via
  /// find_cross_member_conflicts). The serve engine validates each
  /// request once at admission and sweeps conflicts at dispatch; paying
  /// validate_batch again per dispatch is measurable at serving rates
  /// (see bench_serve). Behavior on an *invalid* batch is undefined here
  /// — external callers should use run_batched.
  Status run_batched_prevalidated(const std::vector<BatchItem>& items);

  /// Legacy void wrapper over run_batched (failures land in last_error(),
  /// as with gemm()).
  void gemm_batched(const std::vector<BatchItem>& items);

  /// Plan for a shape: tuned record (exact, then nearest) over the
  /// heuristic default, LRU-cached, quarantined configs skipped. Shared so
  /// a caller can keep executing a plan that gets evicted mid-flight. For
  /// a shape pinned to the reference path this still returns the heuristic
  /// plan (legacy callers need one); run() is where the reference pin is
  /// honored.
  std::shared_ptr<const Plan> plan_for(int m, int n, int k);

  /// Drops every cached packed operand built from `data` (call after
  /// mutating or freeing a buffer previously passed to gemm_const_*).
  /// Returns the number of entries dropped.
  std::size_t invalidate(const void* data);

  /// Drops the cached Plan for one shape so the next call re-resolves it
  /// through the full candidate ladder (tuned exact -> nearest ->
  /// heuristic). This is the shape-keyed counterpart to invalidate(ptr):
  /// without it a shape resolved heuristically before a record existed
  /// stays pinned to that plan for the cache's lifetime. Quarantine and
  /// verification state survive — a poisoned config stays poisoned.
  /// Returns true if an entry was dropped.
  bool invalidate_plan(int m, int n, int k);

  /// Publishes a tuned candidate into the live context: inserts it into
  /// the in-memory records table (kept only if `cost` beats any stored
  /// record for the shape under this context's backend — the candidate's
  /// backend field is pinned to backend_id() first), bumps the records
  /// generation so every cached plan re-resolves on its next hit (nearest
  /// -shape neighbors refresh too), and drops this shape's cached entry so
  /// the very next request executes the published config. The critical
  /// section is a map insert plus one list erase — safe to call from a
  /// background tuner while the dispatcher is serving. Returns true if the
  /// record was stored (false: an equal-or-better record already existed).
  /// Persistence is the caller's job (records_snapshot + save_file_merged).
  bool publish_record(int m, int n, int k, const tune::Candidate& candidate,
                      double cost);

  /// True when the records table holds an exact-shape record for this
  /// context's backend — the online tuner's "already tuned" test.
  bool has_exact_record(int m, int n, int k) const;

  /// Thread-safe copy of the records table (the publication target of
  /// publish_record), for persistence via TuningRecords::save_file_merged.
  tune::TuningRecords records_snapshot() const;

  /// Drops all cached plans and packed operands (stats, quarantine and
  /// health are kept — a poisoned config stays poisoned).
  void clear();

  /// Owned pool; nullptr when the context is serial (threads == 1) or the
  /// pool has been quarantined after a worker fault. Created lazily on
  /// first use.
  common::ThreadPool* pool();

  ContextStats stats() const;
  /// Degradation snapshot (see HealthReport).
  HealthReport health() const;
  /// Most recent non-OK status reported by an entry point *on the calling
  /// thread* (OK if this thread has not had a failure) — the query channel
  /// for the legacy void API. Per-thread on purpose: concurrent run* calls
  /// from different threads cannot clobber each other's error between the
  /// failing call and the query. The process-wide most-recent error is
  /// health().last_error.
  Status last_error() const;

  std::size_t plan_cache_size() const;
  std::size_t packed_cache_size() const;
  /// Direct reference to the records table. Unsynchronized: publish_record
  /// mutates the table under the context lock, so this reference is only
  /// safe while no concurrent publisher (e.g. a running OnlineTuner) is
  /// attached — use records_snapshot() otherwise.
  const tune::TuningRecords& records() const { return records_; }
  /// Total last_error slots currently held across every live thread's
  /// per-thread map, for all contexts (test hook for the destructor sweep
  /// that keeps context churn from growing the maps without bound).
  static std::size_t thread_error_slots();
  /// The backend this context resolved at construction (never kAuto).
  backend::BackendId backend_id() const { return backend_; }
  /// sim::SimOptions pre-filled with this context's watchdog budgets
  /// (options().watchdog), for callers pricing shapes through
  /// sim::simulate_checked under the context's policy. Other fields keep
  /// their SimOptions defaults.
  sim::SimOptions pipeline_options() const;
  const ContextOptions& options() const { return opts_; }

 private:
  struct ShapeKey {
    int m = 0, n = 0, k = 0;
    auto operator<=>(const ShapeKey&) const = default;
  };
  /// Identity of a GemmConfig for verification/quarantine bookkeeping.
  /// Includes the backend: the same blocking verified under NEON says
  /// nothing about the SVE instruction stream for that tile, and vice
  /// versa, so quarantine entries never cross backends.
  struct ConfigKey {
    int mc = 0, nc = 0, kc = 0;
    int loop_order = 0, packing = 0, tiling = 0, lanes = 0;
    int backend = 0;
    auto operator<=>(const ConfigKey&) const = default;
  };
  struct PackedKey {
    const void* data = nullptr;
    int rows = 0, cols = 0, ld = 0;
    bool is_a = false;
    /// Packing tier the entry was built for: fp32 (PackedA/PackedB) and
    /// int8 (quant::QPackedB) packings of the same buffer are distinct
    /// cache lines; invalidate(ptr) drops both.
    common::DType dtype = common::DType::kF32;
    auto operator<=>(const PackedKey&) const = default;
  };
  struct PackedEntry {
    std::shared_ptr<const PackedA> a;
    std::shared_ptr<const PackedB> b;
    std::shared_ptr<const Plan> plan;  // layout the packing was built for
    /// Quantized tier (key.dtype == kI8): int8 blocks + per-column scales.
    std::shared_ptr<const quant::QPackedB> qb;
  };
  /// A cached, verified resolution for one shape. `plan == nullptr` means
  /// the shape is pinned to the reference path. `latency` is the shape's
  /// per-shape latency histogram in the process-wide obs registry (stable
  /// for the registry's lifetime, so caching the pointer is safe).
  struct PlanEntry {
    std::shared_ptr<const Plan> plan;
    obs::Histogram* latency = nullptr;
    /// The {shape=...,dtype="f32"} twin of `latency` (same registry
    /// stability argument; the quantized path keeps its own i8 twins).
    obs::Histogram* latency_dtype = nullptr;
    /// records_gen_ observed when this entry resolved. A hit whose
    /// generation is behind the live counter is stale — the records table
    /// changed since — and re-resolves as a miss.
    std::uint64_t generation = 0;
  };

  PlanEntry entry_for(int m, int n, int k);
  Status run_batched_impl(const std::vector<BatchItem>& items, bool validate);
  Status verify_config(const Plan& plan);
  /// execute_entry wraps the impl with the obs timing/accounting (span,
  /// latency histograms, call/flop/failure counters).
  Status execute_entry(const PlanEntry& entry, common::ConstMatrixView a,
                       common::ConstMatrixView b, common::MatrixView c,
                       const GemmExParams& beta1_params,
                       const PackedA* packed_a, const PackedB* packed_b);
  Status execute_entry_impl(const PlanEntry& entry, common::ConstMatrixView a,
                            common::ConstMatrixView b, common::MatrixView c,
                            const GemmExParams& beta1_params,
                            const PackedA* packed_a, const PackedB* packed_b);
  StatusOr<std::shared_ptr<const PackedA>> packed_a_for(
      common::ConstMatrixView a, const std::shared_ptr<const Plan>& plan);
  StatusOr<std::shared_ptr<const PackedB>> packed_b_for(
      common::ConstMatrixView b, const std::shared_ptr<const Plan>& plan);
  StatusOr<std::shared_ptr<const quant::QPackedB>> qpacked_b_for(
      common::ConstMatrixView b);
  /// Times one quantized call and updates the obs accounting (calls/flops,
  /// unlabeled + shape-labeled + dtype-labeled latency series). Exactly one
  /// of b / qb drives the kernel.
  Status execute_quant(common::ConstMatrixView a, common::ConstMatrixView b,
                       const quant::QPackedB* qb, common::MatrixView c,
                       const quant::QGemmOptions& opts);
  common::ThreadPool* effective_pool();
  void note_strategy(bool serial, ParallelStrategy chosen);
  void record_event(HealthEvent::Kind kind, std::string detail);
  Status record_error(Status s);  // stores non-OK into last_error, passes through

  /// Process-unique id keying this context's per-thread last_error slots.
  static std::uint64_t next_id();

  const ContextOptions opts_;
  /// Resolved at construction from opts_.backend (kAuto -> env/registry).
  backend::BackendId backend_ = backend::BackendId::kNeon;
  const std::uint64_t id_ = next_id();
  std::uint64_t records_skipped_ = 0;  // set before records_ loads
  /// Mutated only by publish_record (under mu_); every read on the plan
  /// resolution path also holds mu_. The records() accessor hands out an
  /// unsynchronized reference — see its comment.
  tune::TuningRecords records_;

  mutable std::mutex mu_;
  /// Bumped by publish_record under mu_; PlanEntry::generation snapshots
  /// it at resolve so stale cache hits re-resolve.
  std::uint64_t records_gen_ = 0;
  // Plan LRU: list front = most recently used; index into the list.
  std::list<std::pair<ShapeKey, PlanEntry>> plan_lru_;
  std::map<ShapeKey, decltype(plan_lru_)::iterator> plan_index_;
  std::list<std::pair<PackedKey, PackedEntry>> packed_lru_;
  std::map<PackedKey, decltype(packed_lru_)::iterator> packed_index_;
  ContextStats stats_;

  // Verification/quarantine state (guarded by mu_).
  std::map<ConfigKey, std::string> quarantined_;  // key -> reason
  std::map<ConfigKey, bool> verified_;            // probes already passed
  HealthReport health_;                           // counters + event log

  std::atomic<bool> pool_degraded_{false};
  std::once_flag pool_once_;
  std::unique_ptr<common::ThreadPool> pool_;
};

/// Process-wide context backing the free-function API. Deliberately
/// serial (threads = 1) so the historical behavior of the free functions
/// is preserved exactly; construct your own Context to opt into the pool.
Context& default_context();

/// Cardinality cap for the per-shape latency series
/// (autogemm_gemm_seconds{shape="MxNxK"}): labels are assigned first-come-
/// first-served to the first `cap` distinct shapes a process executes;
/// every later shape shares the "other" series. The cap bounds registry
/// growth under an adversarial shape stream — it does NOT track hotness,
/// so a shape that becomes hot after the cap fills stays aggregated under
/// "other" forever (which is why the online tuner ranks hot shapes from
/// the serve engine's per-shape request accounting, never from these
/// labels). The dtype-labeled twins
/// (autogemm_gemm_seconds{shape=...,dtype=...}) draw from the same
/// first-come-first-served label set, so the cap bounds the union of both
/// families — a shape capped to "other" is "other" in every dtype series
/// too. Initialized from AUTOGEMM_SHAPE_LABEL_CAP (default 128);
/// raising the cap at runtime admits new labels, lowering it never evicts
/// already-assigned ones. The unlabeled autogemm_gemm_seconds histogram
/// always sees every call regardless of the cap.
void set_shape_label_cap(std::size_t cap);
std::size_t shape_label_cap();

}  // namespace autogemm
