// autogemm::Context — the runtime layer of the public API.
//
// The paper's deployment model ("optimal parameters are tuned ahead of
// time per shape, then baked into the library", §IV-C) assumes per-shape
// work is amortized across calls. Context is where that amortization
// lives for a process serving repeated GEMM traffic:
//
//   * a thread-safe, shape-keyed LRU cache of Plan objects, so DMT tiling
//     and hardware-model costing run once per distinct (M, N, K);
//   * an LRU cache of offline-packed constant operands (PackedA/PackedB),
//     keyed by the operand's data pointer and shape, so a DNN's weight
//     matrices are packed once and reused every inference;
//   * optional tune::TuningRecords backing: a context constructed with a
//     records file resolves each incoming shape to its tuned GemmConfig
//     (exact match first, then nearest-shape fallback) before falling back
//     to the default_config heuristic;
//   * an owned persistent ThreadPool, so callers stop threading pool
//     pointers through every call.
//
// Context::gemm is the primary entry point; the free functions in
// core/gemm.hpp and core/gemm_ex.hpp are thin wrappers over the
// process-wide default_context().
//
// Packed-operand caching is keyed by pointer identity: the cache cannot
// see through the pointer, so callers that mutate or free a cached
// operand must call invalidate(ptr) (or clear()) before the next gemm on
// that buffer. This is the standard contract for prepacked-weight APIs.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/matrix.hpp"
#include "common/threadpool.hpp"
#include "core/batched.hpp"
#include "core/gemm.hpp"
#include "core/gemm_ex.hpp"
#include "tune/records.hpp"

namespace autogemm {

struct ContextOptions {
  /// Max distinct shapes whose Plans stay cached (LRU beyond that).
  std::size_t plan_capacity = 256;
  /// Max packed constant operands kept (LRU beyond that).
  std::size_t packed_capacity = 64;
  /// Worker threads for the owned pool: 0 = hardware_concurrency,
  /// 1 = serial (no pool is created).
  unsigned threads = 0;
  /// Optional tuned-parameter table (see tune/records.hpp); empty = none.
  std::string records_path;
};

/// Monotonic cache counters (see Context::stats); the cache hit-rate bench
/// reports these as JSON.
struct ContextStats {
  std::uint64_t plan_hits = 0;
  std::uint64_t plan_misses = 0;
  std::uint64_t plan_evictions = 0;
  std::uint64_t packed_hits = 0;
  std::uint64_t packed_misses = 0;
  std::uint64_t packed_evictions = 0;
  std::uint64_t packed_invalidations = 0;
  /// How plan configs were resolved on miss: tuned record (exact shape),
  /// tuned record (nearest shape), or the default_config heuristic.
  std::uint64_t resolved_exact = 0;
  std::uint64_t resolved_nearest = 0;
  std::uint64_t resolved_heuristic = 0;
};

class Context {
 public:
  Context();
  explicit Context(const ContextOptions& opts);
  /// Convenience: default options + tuned records loaded from `records_path`
  /// (throws std::runtime_error if the file cannot be read).
  explicit Context(const std::string& records_path);
  /// Tuned records handed over directly (e.g. straight from a tuning run).
  explicit Context(tune::TuningRecords records, const ContextOptions& opts = {});
  ~Context();

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  /// Primary entry point: C = alpha * op(A) * op(B) + beta * C with the
  /// shape's cached (tuned or heuristic) Plan and the owned pool. The
  /// defaults (no transposes, alpha = beta = 1) make this C += A * B; pass
  /// beta = 0 for overwrite semantics (see core/gemm.hpp).
  void gemm(common::ConstMatrixView a, common::ConstMatrixView b,
            common::MatrixView c, const GemmExParams& params = {});

  /// As gemm(), with A promised constant across calls: its offline-packed
  /// form (PackedA) is cached under A's data pointer + shape. The cached
  /// fast path requires canonical operands (no transposes, alpha = 1);
  /// other params fall back to the plain gemm() path. Conv-as-GEMM weight
  /// matrices are the motivating caller.
  void gemm_const_a(common::ConstMatrixView a, common::ConstMatrixView b,
                    common::MatrixView c, const GemmExParams& params = {});

  /// As gemm(), with B promised constant across calls (cached PackedB).
  void gemm_const_b(common::ConstMatrixView a, common::ConstMatrixView b,
                    common::MatrixView c, const GemmExParams& params = {});

  /// C_i += A_i * B_i for every item through the cached per-shape plans and
  /// the owned pool (each item runs single-threaded inside the batch-level
  /// parallel_for, as in gemm_batched).
  void gemm_batched(const std::vector<BatchItem>& items);

  /// Plan for a shape: tuned record (exact, then nearest) over the
  /// heuristic default, LRU-cached. Shared so a caller can keep executing
  /// a plan that gets evicted mid-flight.
  std::shared_ptr<const Plan> plan_for(int m, int n, int k);

  /// Drops every cached packed operand built from `data` (call after
  /// mutating or freeing a buffer previously passed to gemm_const_*).
  /// Returns the number of entries dropped.
  std::size_t invalidate(const void* data);

  /// Drops all cached plans and packed operands (stats are kept).
  void clear();

  /// Owned pool; nullptr when the context is serial (threads == 1).
  /// Created lazily on first use.
  common::ThreadPool* pool();

  ContextStats stats() const;
  std::size_t plan_cache_size() const;
  std::size_t packed_cache_size() const;
  const tune::TuningRecords& records() const { return records_; }

 private:
  struct ShapeKey {
    int m = 0, n = 0, k = 0;
    auto operator<=>(const ShapeKey&) const = default;
  };
  struct PackedKey {
    const void* data = nullptr;
    int rows = 0, cols = 0, ld = 0;
    bool is_a = false;
    auto operator<=>(const PackedKey&) const = default;
  };
  struct PackedEntry {
    std::shared_ptr<const PackedA> a;
    std::shared_ptr<const PackedB> b;
    std::shared_ptr<const Plan> plan;  // layout the packing was built for
  };

  GemmConfig resolve_config(int m, int n, int k);
  std::shared_ptr<const PackedA> packed_a_for(
      common::ConstMatrixView a, const std::shared_ptr<const Plan>& plan);
  std::shared_ptr<const PackedB> packed_b_for(
      common::ConstMatrixView b, const std::shared_ptr<const Plan>& plan);

  const ContextOptions opts_;
  const tune::TuningRecords records_;

  mutable std::mutex mu_;
  // Plan LRU: list front = most recently used; index into the list.
  std::list<std::pair<ShapeKey, std::shared_ptr<const Plan>>> plan_lru_;
  std::map<ShapeKey, decltype(plan_lru_)::iterator> plan_index_;
  std::list<std::pair<PackedKey, PackedEntry>> packed_lru_;
  std::map<PackedKey, decltype(packed_lru_)::iterator> packed_index_;
  ContextStats stats_;

  std::once_flag pool_once_;
  std::unique_ptr<common::ThreadPool> pool_;
};

/// Process-wide context backing the free-function API. Deliberately
/// serial (threads = 1) so the historical behavior of the free functions
/// is preserved exactly; construct your own Context to opt into the pool.
Context& default_context();

}  // namespace autogemm
