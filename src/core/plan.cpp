#include "core/plan.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "hw/chip_database.hpp"

namespace autogemm {

const char* loop_order_name(LoopOrder order) {
  switch (order) {
    case LoopOrder::kNKM: return "NKM";
    case LoopOrder::kNMK: return "NMK";
    case LoopOrder::kKNM: return "KNM";
    case LoopOrder::kKMN: return "KMN";
    case LoopOrder::kMNK: return "MNK";
    case LoopOrder::kMKN: return "MKN";
  }
  return "?";
}

const char* parallel_strategy_name(ParallelStrategy s) {
  switch (s) {
    case ParallelStrategy::kAuto: return "auto";
    case ParallelStrategy::kBlocksOnly: return "blocks-only";
    case ParallelStrategy::kKSplit: return "k-split";
  }
  return "?";
}

GemmConfig default_config(int m, int n, int k) {
  GemmConfig cfg;
  cfg.hw = hw::host_model();  // tiles sized for the machine we run on
  // Goto's sizing rule derived from the actual cache hierarchy: the
  // streamed B panel rows (kc x nr) plus the A block (mc x kc) should
  // occupy about half of L1 so the C tile and the B stream never evict
  // each other, and the full B block (kc x nc) should fit comfortably in
  // L2. For the small/irregular shapes this library targets, clamping to
  // the problem dominates these ceilings anyway.
  const long l1 = cfg.hw.caches.empty() ? 32 * 1024
                                        : cfg.hw.caches.front().size_bytes;
  const long l2 = cfg.hw.caches.size() > 1 ? cfg.hw.caches[1].size_bytes
                                           : 8 * l1;
  const int kc_cap = static_cast<int>(std::clamp<long>(
      l1 / (2 * 4 * 24 /* ~max(mr)+nr working rows */), 64, 512));
  const int mc_cap = static_cast<int>(std::clamp<long>(
      l1 / (2 * 4 * kc_cap), 24, 256));
  const int nc_cap = static_cast<int>(std::clamp<long>(
      l2 / (2 * 4 * kc_cap), 64, 1024));
  cfg.kc = std::clamp(k, 1, kc_cap);
  cfg.nc = std::clamp(n, 1, nc_cap);
  cfg.mc = std::clamp(m, 1, mc_cap);
  // Packing pays off only when the streamed B block is revisited; for
  // small N the paper skips it.
  cfg.packing = (static_cast<long>(n) * k <= 64 * 64)
                    ? kernels::Packing::kNone
                    : kernels::Packing::kOnline;
  return cfg;
}

StatusOr<Plan> Plan::create(int m, int n, int k, GemmConfig config) {
  if (m <= 0 || n <= 0 || k <= 0)
    return InvalidArgumentError("Plan: dimensions must be positive (" +
                                std::to_string(m) + "x" + std::to_string(n) +
                                "x" + std::to_string(k) + ")");
  if (config.mc <= 0 || config.nc <= 0 || config.kc <= 0)
    return InvalidArgumentError("Plan: blocking parameters must be positive");
  if (config.hw.lanes < 1 || config.hw.vector_registers < 4)
    return InvalidArgumentError("Plan: implausible hardware model");
  try {
    return Plan(m, n, k, std::move(config));
  } catch (const std::exception& e) {
    // DMT / the kernel model choked on this configuration; a tuned record
    // transferred from another machine can do that, and it must degrade,
    // not abort.
    return InternalError(std::string("Plan: construction failed: ") +
                         e.what());
  }
}

Plan::Plan(int m, int n, int k, GemmConfig config)
    : m_(m), n_(n), k_(k), cfg_(std::move(config)) {
  if (m <= 0 || n <= 0 || k <= 0)
    throw std::invalid_argument("Plan: dimensions must be positive");
  cfg_.mc = std::clamp(cfg_.mc, 1, m);
  cfg_.nc = std::clamp(cfg_.nc, 1, n);
  cfg_.kc = std::clamp(cfg_.kc, 1, k);

  // Project the whole-problem cost: every cache block contributes its
  // tiling's projected cycles (edge blocks computed once per shape).
  projected_cycles_ = 0;
  for (int i0 = 0; i0 < m; i0 += cfg_.mc) {
    const int bm = std::min(cfg_.mc, m - i0);
    for (int j0 = 0; j0 < n; j0 += cfg_.nc) {
      const int bn = std::min(cfg_.nc, n - j0);
      for (int p0 = 0; p0 < k; p0 += cfg_.kc) {
        const int bk = std::min(cfg_.kc, k - p0);
        projected_cycles_ += block_tiling(bm, bn, bk).projected_cycles;
      }
    }
  }
}

const tiling::TilingResult& Plan::block_tiling(int bm, int bn, int bk) const {
  const std::array<int, 3> key{bm, bn, bk};
  auto it = tilings_.find(key);
  if (it != tilings_.end()) return it->second;
  return tilings_.emplace(key, compute_tiling(bm, bn, bk)).first->second;
}

tiling::TilingResult Plan::compute_tiling(int bm, int bn, int bk) const {
  model::KernelModelOptions opts;
  opts.rotate_registers = true;  // autoGEMM always ships rotated kernels
  switch (cfg_.tiling) {
    case TilingMode::kDynamic:
      return tiling::tile_dmt(bm, bn, bk, cfg_.hw, opts);
    case TilingMode::kStaticOpenBLAS:
      return tiling::tile_openblas(bm, bn, bk, cfg_.hw, opts);
    case TilingMode::kStaticLIBXSMM:
      return tiling::tile_libxsmm(bm, bn, bk, cfg_.hw, opts);
  }
  throw std::logic_error("unknown tiling mode");
}

}  // namespace autogemm
