// autoGEMM execution plans.
//
// A Plan fixes, for one problem shape (M, N, K), every algorithm parameter
// of Table III: the cache block (mc, nc, kc), the loop order sigma_order,
// the packing mode sigma_packing, and — through the Dynamic Micro-Tiling
// algorithm — the register-tile decomposition of each distinct cache-block
// shape. Plans are immutable after construction and cheap to reuse across
// calls, which is the paper's deployment model (parameters are tuned ahead
// of time per shape, then baked into the generated library).
#pragma once

#include <array>
#include <map>
#include <vector>

#include "backend/backend_id.hpp"
#include "common/matrix.hpp"
#include "common/status.hpp"
#include "hw/hardware_model.hpp"
#include "kernels/packing.hpp"
#include "tiling/micro_tiling.hpp"

namespace autogemm {

/// Order of the three cache-blocking loops. The paper's sigma_order spans
/// all permutations of the five blocking parameters; the two register
/// loops are fixed by the micro-kernel itself, so the plan exposes the 3!
/// cache-loop permutations (named by outer-to-inner dimension letters).
enum class LoopOrder : int {
  kNKM = 0,  // jc outer, pc middle, ic inner (Goto's default)
  kNMK,
  kKNM,
  kKMN,
  kMNK,
  kMKN,
};

const char* loop_order_name(LoopOrder order);

/// Micro-tiling strategy selector (autoGEMM uses DMT; the static modes
/// exist so the baselines and the ablation benches share one executor).
enum class TilingMode { kDynamic, kStaticOpenBLAS, kStaticLIBXSMM };

/// How the multithreaded driver partitions the problem (see core/gemm.hpp).
/// kBlocksOnly schedules C cache blocks, each worker running the full K
/// loop — the paper's scheme, which starves the pool when mi*nj is small.
/// kKSplit additionally partitions the K block range into slices with
/// per-slice partial-C accumulation and a deterministic tree reduction —
/// the large-K, small-M·N rescue. kAuto picks per shape and pool size
/// (the heuristic lives in choose_parallel_strategy).
enum class ParallelStrategy : int { kAuto = 0, kBlocksOnly, kKSplit };

const char* parallel_strategy_name(ParallelStrategy s);

struct GemmConfig {
  int mc = 64;
  int nc = 256;
  int kc = 256;
  LoopOrder loop_order = LoopOrder::kNKM;
  kernels::Packing packing = kernels::Packing::kOnline;
  TilingMode tiling = TilingMode::kDynamic;
  ParallelStrategy parallel_strategy = ParallelStrategy::kAuto;
  int threads = 1;
  /// Hardware model that steers DMT's compute/memory-bound classification
  /// and the model costs; defaults to a host-neutral profile.
  hw::HardwareModel hw{};
  /// Kernel backend the config is generated, verified and priced against
  /// (see backend/backend.hpp). Host execution always runs the backend's
  /// compiled kernels when it has them and the portable tile path
  /// otherwise, so the NEON default keeps legacy behavior bit-for-bit.
  backend::BackendId backend = backend::BackendId::kNeon;
};

/// Heuristic parameter choice for a problem shape (the fallback when no
/// tuned record exists): blocks sized to the hardware model's cache
/// hierarchy, clamped to the problem.
GemmConfig default_config(int m, int n, int k);

class Plan {
 public:
  /// Throwing constructor (std::invalid_argument on a bad shape/config);
  /// the Status-reporting path is create() below.
  Plan(int m, int n, int k, GemmConfig config);

  /// Validated construction: rejects non-positive dimensions and
  /// non-positive blocking parameters as kInvalidArgument, and converts
  /// any internal tiling/model failure into kInternal instead of
  /// propagating an exception. This is what Context uses, so a corrupted
  /// tuned record can never abort the process.
  static StatusOr<Plan> create(int m, int n, int k, GemmConfig config);

  int m() const { return m_; }
  int n() const { return n_; }
  int k() const { return k_; }
  const GemmConfig& config() const { return cfg_; }

  /// Micro-tile decomposition for a cache block of shape (bm x bn) at depth
  /// bk (memoized across the at-most-eight distinct edge combinations).
  /// The constructor visits every block of the problem, so all shapes the
  /// executors will request are precomputed and concurrent gemm calls
  /// sharing one Plan (e.g. through a Context's cache) only read the memo;
  /// requesting a *novel* block shape from multiple threads is not safe.
  const tiling::TilingResult& block_tiling(int bm, int bn, int bk) const;

  /// Model-projected cycles for the whole problem on the plan's hardware
  /// model (used by the tuner to rank candidate configurations).
  double projected_cycles() const { return projected_cycles_; }

 private:
  int m_, n_, k_;
  GemmConfig cfg_;
  mutable std::map<std::array<int, 3>, tiling::TilingResult> tilings_;
  double projected_cycles_ = 0;

  tiling::TilingResult compute_tiling(int bm, int bn, int bk) const;
};

}  // namespace autogemm
