// Extended BLAS-style entry point: C = alpha * op(A) * op(B) + beta * C
// with op in {identity, transpose}.
//
// Transposed operands are handled the way every packed GEMM does it: the
// packing stage reads the operand transposed, so the micro-kernels always
// see the canonical row-major layout. alpha is folded into the packed A
// block; beta is applied to C before accumulation.
#pragma once

#include "common/matrix.hpp"
#include "common/threadpool.hpp"
#include "core/plan.hpp"

namespace autogemm {

enum class Trans : std::uint8_t { kNo, kYes };

struct GemmExParams {
  Trans trans_a = Trans::kNo;
  Trans trans_b = Trans::kNo;
  float alpha = 1.0f;
  float beta = 1.0f;
};

/// C = alpha * op(A) * op(B) + beta * C.
///
/// Logical shapes: op(A) is M x K, op(B) is K x N, C is M x N — i.e. with
/// trans_a == kYes the `a` view passed in is K x M. The plan describes the
/// logical (M, N, K) problem. Transposition and alpha force the packed
/// path internally regardless of the plan's sigma_packing.
void gemm_ex(common::ConstMatrixView a, common::ConstMatrixView b,
             common::MatrixView c, const GemmExParams& params,
             const Plan& plan, common::ThreadPool* pool = nullptr);

/// Convenience overload with a heuristic plan.
void gemm_ex(common::ConstMatrixView a, common::ConstMatrixView b,
             common::MatrixView c, const GemmExParams& params = {});

}  // namespace autogemm
