// Extended BLAS-style entry point: C = alpha * op(A) * op(B) + beta * C
// with op in {identity, transpose}.
//
// Transposed operands are handled the way every packed GEMM does it: the
// packing stage reads the operand transposed, so the micro-kernels always
// see the canonical row-major layout. alpha is folded into the packed A
// block; beta is applied to C before accumulation.
#pragma once

#include "common/matrix.hpp"
#include "common/threadpool.hpp"
#include "core/plan.hpp"

namespace autogemm {

enum class Trans : std::uint8_t { kNo, kYes };

struct GemmExParams {
  Trans trans_a = Trans::kNo;
  Trans trans_b = Trans::kNo;
  float alpha = 1.0f;
  float beta = 1.0f;
};

/// C = alpha * op(A) * op(B) + beta * C.
///
/// Logical shapes: op(A) is M x K, op(B) is K x N, C is M x N — i.e. with
/// trans_a == kYes the `a` view passed in is K x M. The plan describes the
/// logical (M, N, K) problem. Transposition and alpha force the packed
/// path internally regardless of the plan's sigma_packing.
void gemm_ex(common::ConstMatrixView a, common::ConstMatrixView b,
             common::MatrixView c, const GemmExParams& params,
             const Plan& plan, common::ThreadPool* pool = nullptr);

/// Convenience overload through the process-default Context (cached
/// per-shape plan; see core/context.hpp).
void gemm_ex(common::ConstMatrixView a, common::ConstMatrixView b,
             common::MatrixView c, const GemmExParams& params = {});

/// Row-major BLAS-compatible shim over gemm_ex — the canonical signature
/// baseline comparisons and external callers bind against:
///
///   C = alpha * op(A) * op(B) + beta * C
///
/// `transa`/`transb` accept 'n'/'N' (identity) or 't'/'T' (transpose);
/// anything else throws std::invalid_argument. op(A) is m x k, op(B) is
/// k x n, C is m x n; lda/ldb/ldc are row-major leading dimensions of the
/// *stored* operands (so with transa == 'T', a is k x m with lda >= m).
/// Routed through the process-default Context, so repeated shapes reuse
/// their cached Plan.
void sgemm(char transa, char transb, int m, int n, int k, float alpha,
           const float* a, int lda, const float* b, int ldb, float beta,
           float* c, int ldc);

namespace detail {
/// Applies beta to C (beta = 0 stores zeros without reading C — the
/// overwrite semantics documented in core/gemm.hpp). Shared by gemm_ex and
/// Context so the accumulate-vs-overwrite behavior is defined in one place.
void scale_c(common::MatrixView c, float beta);
}  // namespace detail

}  // namespace autogemm
