#include "core/batched.hpp"

#include <map>
#include <memory>

#include "core/context.hpp"
#include "core/gemm.hpp"

namespace autogemm {

void gemm_batched(const std::vector<BatchItem>& items, const Plan& plan,
                  common::ThreadPool* pool) {
  if (items.empty()) return;
  if (pool != nullptr && pool->size() > 1) {
    pool->parallel_for(static_cast<int>(items.size()), [&](int i) {
      // Each worker runs its item single-threaded (no nested parallelism).
      gemm(items[i].a, items[i].b, items[i].c, plan, nullptr);
    });
  } else {
    for (const auto& item : items) gemm(item.a, item.b, item.c, plan);
  }
}

void gemm_batched(const std::vector<BatchItem>& items, Context& ctx,
                  common::ThreadPool* pool) {
  if (items.empty()) return;
  // Per-shape plans come from the caller's Context, so repeated batches
  // reuse the same cached (possibly tuned) plans across calls and the
  // context's quarantine/stats see this traffic.
  std::map<std::array<int, 3>, std::shared_ptr<const Plan>> plans;
  for (const auto& item : items) {
    const std::array<int, 3> key{item.a.rows, item.b.cols, item.a.cols};
    if (!plans.count(key))
      plans.emplace(key, ctx.plan_for(key[0], key[1], key[2]));
  }
  const auto run_item = [&](const BatchItem& item) {
    const std::array<int, 3> key{item.a.rows, item.b.cols, item.a.cols};
    // Each worker runs its item single-threaded (no nested parallelism).
    gemm(item.a, item.b, item.c, *plans.at(key), nullptr);
  };
  if (pool == nullptr) pool = ctx.pool();
  if (pool != nullptr && pool->size() > 1) {
    pool->parallel_for(static_cast<int>(items.size()),
                       [&](int i) { run_item(items[i]); });
  } else {
    for (const auto& item : items) run_item(item);
  }
}

void gemm_batched(const std::vector<BatchItem>& items,
                  common::ThreadPool* pool) {
  // Legacy implicit-global path. default_context() is serial, so with no
  // caller-supplied pool the batch runs serial exactly as before.
  gemm_batched(items, default_context(), pool);
}

}  // namespace autogemm
