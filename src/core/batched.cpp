#include "core/batched.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <string>

#include "core/context.hpp"
#include "core/gemm.hpp"

namespace autogemm {

namespace {

using common::ConstMatrixView;

/// Half-open element range [begin, end) covered by a view, nullptr/0 for
/// empty views. The end is the address one past the last element of the
/// last row, so ld gaps inside the span are (conservatively) included.
std::pair<const float*, const float*> view_range(ConstMatrixView v) {
  if (v.data == nullptr || v.rows <= 0 || v.cols <= 0)
    return {nullptr, nullptr};
  return {v.data, v.data + static_cast<std::ptrdiff_t>(v.rows - 1) * v.ld +
                      v.cols};
}

Status check_member_view(ConstMatrixView v, const char* who, std::size_t i) {
  const std::string where =
      std::string("batch item ") + std::to_string(i) + ": " + who;
  if (v.rows < 0 || v.cols < 0)
    return InvalidArgumentError(where + ": negative dimension");
  if (v.data == nullptr && v.rows > 0 && v.cols > 0)
    return InvalidArgumentError(where + ": null data pointer with nonzero extent");
  if (v.rows > 1 && v.ld < v.cols)
    return InvalidArgumentError(where + ": leading dimension below row width");
  return Status::OK();
}

/// One cross-member overlap: member `c_item`'s C against member
/// `other_item`'s C (other_is_c) or input operand.
struct Conflict {
  std::size_t c_item;
  std::size_t other_item;
  bool other_is_c;
};

/// All cross-member overlaps involving a C, found by sorting the C
/// element ranges and sweeping — O(B log B) instead of the quadratic
/// pair scan, which dominated dispatch cost at serve-engine batch sizes.
std::vector<Conflict> cross_member_conflicts(
    const std::vector<BatchItem>& items) {
  std::vector<Conflict> out;
  struct CRange {
    const float* b;
    const float* e;
    std::size_t item;
  };
  std::vector<CRange> cs;
  cs.reserve(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto [b, e] = view_range(ConstMatrixView(items[i].c));
    if (b != nullptr) cs.push_back({b, e, i});
  }
  std::sort(cs.begin(), cs.end(),
            [](const CRange& x, const CRange& y) { return x.b < y.b; });

  // C-vs-C: after the sort, an overlap shows up against the running
  // max-end range.
  bool cc_conflict = false;
  for (std::size_t k = 1, widest = 0; k < cs.size(); ++k) {
    if (cs[k].b < cs[widest].e) {
      out.push_back({cs[widest].item, cs[k].item, true});
      cc_conflict = true;
    }
    if (cs[k].e > cs[widest].e) widest = k;
  }

  // Inputs vs C. With pairwise-disjoint Cs the sorted begins imply
  // sorted ends, so the overlapping run is found by binary search; on
  // the (already failing) C-C conflict path fall back to a linear scan.
  for (std::size_t j = 0; j < items.size(); ++j) {
    for (const ConstMatrixView* v : {&items[j].a, &items[j].b}) {
      const auto [qb, qe] = view_range(*v);
      if (qb == nullptr) continue;
      auto it = cc_conflict
                    ? cs.begin()
                    : std::upper_bound(
                          cs.begin(), cs.end(), qb,
                          [](const float* p, const CRange& r) { return p < r.e; });
      for (; it != cs.end(); ++it) {
        if (!cc_conflict && it->b >= qe) break;
        if (it->item != j && it->b < qe && it->e > qb)
          out.push_back({it->item, j, false});
      }
    }
  }
  return out;
}

}  // namespace

bool views_overlap(ConstMatrixView x, ConstMatrixView y) {
  const auto [xb, xe] = view_range(x);
  const auto [yb, ye] = view_range(y);
  if (xb == nullptr || yb == nullptr) return false;
  return xb < ye && yb < xe;
}

namespace {

/// The per-member half of validate_batch, allocation-free on the OK path
/// (the serve engine runs this on every admission).
Status check_item(const BatchItem& it, std::size_t i) {
  AUTOGEMM_RETURN_IF_ERROR(check_member_view(it.a, "A", i));
  AUTOGEMM_RETURN_IF_ERROR(check_member_view(it.b, "B", i));
  AUTOGEMM_RETURN_IF_ERROR(check_member_view(ConstMatrixView(it.c), "C", i));
  if (it.a.cols != it.b.rows)
    return InvalidArgumentError(
        "batch item " + std::to_string(i) + ": inner dimensions disagree (A is " +
        std::to_string(it.a.rows) + "x" + std::to_string(it.a.cols) +
        ", B is " + std::to_string(it.b.rows) + "x" +
        std::to_string(it.b.cols) + ")");
  if (it.c.rows != it.a.rows || it.c.cols != it.b.cols)
    return InvalidArgumentError(
        "batch item " + std::to_string(i) + ": C is " +
        std::to_string(it.c.rows) + "x" + std::to_string(it.c.cols) +
        " but A*B is " + std::to_string(it.a.rows) + "x" +
        std::to_string(it.b.cols));
  const ConstMatrixView c_read(it.c);
  if (views_overlap(c_read, it.a) || views_overlap(c_read, it.b))
    return InvalidArgumentError(
        "batch item " + std::to_string(i) +
        ": C overlaps an input operand (in-place GEMM is not supported)");
  return Status::OK();
}

}  // namespace

Status validate_batch_item(const BatchItem& item) {
  return check_item(item, 0);
}

Status validate_batch(const std::vector<BatchItem>& items) {
  for (std::size_t i = 0; i < items.size(); ++i)
    AUTOGEMM_RETURN_IF_ERROR(check_item(items[i], i));
  // Cross-member aliasing: every C must be disjoint from every *other*
  // member's operands. Shared read operands (the common case the batched
  // path optimizes for) are explicitly legal.
  const std::vector<Conflict> conflicts = cross_member_conflicts(items);
  if (!conflicts.empty()) {
    const Conflict& c = conflicts.front();
    if (c.other_is_c) {
      const std::size_t lo = std::min(c.c_item, c.other_item);
      const std::size_t hi = std::max(c.c_item, c.other_item);
      return InvalidArgumentError(
          "batch items " + std::to_string(lo) + " and " + std::to_string(hi) +
          ": C outputs overlap (each C must be written by exactly one "
          "member)");
    }
    return InvalidArgumentError(
        "batch item " + std::to_string(c.c_item) + ": C overlaps item " +
        std::to_string(c.other_item) +
        "'s input operand (members run concurrently; a C that feeds "
        "another member must go in a later batch)");
  }
  return Status::OK();
}

std::vector<std::size_t> find_cross_member_conflicts(
    const std::vector<BatchItem>& items) {
  std::vector<std::size_t> out;
  for (const Conflict& c : cross_member_conflicts(items)) {
    out.push_back(c.c_item);
    out.push_back(c.other_item);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void gemm_batched(const std::vector<BatchItem>& items, const Plan& plan,
                  common::ThreadPool* pool) {
  if (items.empty()) return;
  if (pool != nullptr && pool->size() > 1) {
    pool->parallel_for(static_cast<int>(items.size()), [&](int i) {
      // Each worker runs its item single-threaded (no nested parallelism).
      gemm(items[i].a, items[i].b, items[i].c, plan, nullptr);
    });
  } else {
    for (const auto& item : items) gemm(item.a, item.b, item.c, plan);
  }
}

void gemm_batched(const std::vector<BatchItem>& items, Context& ctx,
                  common::ThreadPool* pool) {
  if (items.empty()) return;
  // Per-shape plans come from the caller's Context, so repeated batches
  // reuse the same cached (possibly tuned) plans across calls and the
  // context's quarantine/stats see this traffic.
  std::map<std::array<int, 3>, std::shared_ptr<const Plan>> plans;
  for (const auto& item : items) {
    const std::array<int, 3> key{item.a.rows, item.b.cols, item.a.cols};
    if (!plans.count(key))
      plans.emplace(key, ctx.plan_for(key[0], key[1], key[2]));
  }
  const auto run_item = [&](const BatchItem& item) {
    const std::array<int, 3> key{item.a.rows, item.b.cols, item.a.cols};
    // Each worker runs its item single-threaded (no nested parallelism).
    gemm(item.a, item.b, item.c, *plans.at(key), nullptr);
  };
  if (pool == nullptr) pool = ctx.pool();
  if (pool != nullptr && pool->size() > 1) {
    pool->parallel_for(static_cast<int>(items.size()),
                       [&](int i) { run_item(items[i]); });
  } else {
    for (const auto& item : items) run_item(item);
  }
}

}  // namespace autogemm
