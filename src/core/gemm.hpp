// autoGEMM free-function entry points.
//
// ## Accumulate vs. overwrite — the one place these semantics are defined
//
// Every entry point in this library is a special case of the BLAS form
//
//     C = alpha * op(A) * op(B) + beta * C
//
// (see core/gemm_ex.hpp). The two common cases get names:
//
//   * `gemm(...)`            == alpha = 1, beta = 1:  C += A * B
//   * `gemm_overwrite(...)`  == alpha = 1, beta = 0:  C  = A * B
//
// `gemm_overwrite` routes through the same beta handling as `gemm_ex`
// (beta = 0 means C's prior contents are ignored, never read — NaNs and
// uninitialized storage in C are fine). Shapes: op(A) is M x K, op(B) is
// K x N, C is M x N, all row-major views with arbitrary leading dimensions.
//
// These free functions are thin wrappers over a process-wide
// `autogemm::Context` (core/context.hpp), which is the primary API: it
// caches one Plan per shape and packed constant operands across calls.
// Construct your own Context to control cache sizes, threading, and tuned
// parameter records.
#pragma once

#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/matrix.hpp"
#include "common/status.hpp"
#include "common/threadpool.hpp"
#include "core/plan.hpp"

namespace autogemm {

/// B packed offline into cache-block-contiguous layout (sigma_packing =
/// offline). Built once per (B, plan) pair and reused across gemm calls —
/// the mode the ResNet-50 evaluation uses for constant weight matrices.
class PackedB {
 public:
  PackedB() = default;
  PackedB(common::ConstMatrixView b, const Plan& plan);

  /// Validated construction: rejects a view that does not match the plan's
  /// (K, N) or has a bad leading dimension / null data (kInvalidArgument),
  /// and reports allocation failure as kResourceExhausted instead of
  /// throwing.
  static StatusOr<PackedB> create(common::ConstMatrixView b, const Plan& plan);

  const float* block(int p_idx, int j_idx) const;
  long block_ld() const { return ld_; }
  bool empty() const { return data_.empty(); }

 private:
  common::AlignedBuffer data_;  // uninitialized; padding edges zeroed by ctor
  std::vector<std::size_t> offsets_;
  int kblocks_ = 0, nblocks_ = 0;
  long ld_ = 0;
};

/// A packed offline the same way — the mirror of PackedB for workloads
/// whose *left* operand is the constant one (conv-as-GEMM puts the weight
/// matrix in A: output = weights x im2col). Built once per (A, plan) pair.
class PackedA {
 public:
  PackedA() = default;
  PackedA(common::ConstMatrixView a, const Plan& plan);

  /// Validated construction mirroring PackedB::create (view must be the
  /// plan's (M, K)).
  static StatusOr<PackedA> create(common::ConstMatrixView a, const Plan& plan);

  const float* block(int i_idx, int p_idx) const;
  long block_ld() const { return ld_; }
  bool empty() const { return data_.empty(); }

 private:
  common::AlignedBuffer data_;  // uninitialized; padding edges zeroed by ctor
  std::vector<std::size_t> offsets_;
  int mblocks_ = 0, kblocks_ = 0;
  long ld_ = 0;
};

/// Resolves the plan's parallel strategy against a pool of `workers`
/// threads (the caller participates too, so `workers + 1` lanes run).
/// A forced strategy in the plan's config wins, except that k-split
/// degrades to blocks-only when there are fewer than two K blocks.
/// kAuto picks k-split only when C blocks alone would starve the pool
/// (mi*nj < 2x the participant count), K is deep enough to slice, and
/// the partial-C footprint fits the last-level cache budget.
ParallelStrategy choose_parallel_strategy(const Plan& plan, unsigned workers);

/// C += A * B following the plan. `pool` enables the multithreaded path.
/// Scheduling follows the plan's ParallelStrategy: blocks-only treats
/// cache blocks of C as the work unit (the paper's scheme); k-split also
/// partitions the K block range across workers with per-slice partial-C
/// accumulation and a deterministic tree reduction, rescuing large-K
/// shapes whose mi*nj cannot feed the pool.
void gemm(common::ConstMatrixView a, common::ConstMatrixView b,
          common::MatrixView c, const Plan& plan,
          common::ThreadPool* pool = nullptr);

/// C += A * B with offline-packed B. `b_shape` is the original B view
/// (only its shape is consulted).
void gemm(common::ConstMatrixView a, const PackedB& packed_b,
          common::ConstMatrixView b_shape, common::MatrixView c,
          const Plan& plan, common::ThreadPool* pool = nullptr);

/// C += A * B with offline-packed A. `a_shape` is the original A view
/// (only its shape is consulted).
void gemm(const PackedA& packed_a, common::ConstMatrixView a_shape,
          common::ConstMatrixView b, common::MatrixView c, const Plan& plan,
          common::ThreadPool* pool = nullptr);

/// Convenience: C += A * B through the process-default Context (cached
/// per-shape plan, serial execution).
void gemm(common::ConstMatrixView a, common::ConstMatrixView b,
          common::MatrixView c);

/// Convenience: C = A * B (beta = 0; see the semantics note above).
void gemm_overwrite(common::ConstMatrixView a, common::ConstMatrixView b,
                    common::MatrixView c);

namespace detail {

/// One member of a same-shape group; every member matches the group
/// plan's (M, N, K).
struct GroupMember {
  common::ConstMatrixView a;
  common::ConstMatrixView b;
  common::MatrixView c;
};

/// C_i += A_i * B_i for a same-shape group, back-to-back on the calling
/// thread, sharing one packing scratch and one trace span across the
/// group. The per-call fixed costs of gemm() (two aligned scratch
/// allocations, span setup) dominate tiny-GEMM dispatch; here they are
/// paid once per group instead of once per member — the batched path's
/// amortization (Context::run_batched, serve engine shape buckets).
/// `packed_a`/`packed_b` optionally carry a group-shared offline-packed
/// operand (either may be null). Callers must have validated the group
/// (validate_batch); shape mismatches against the plan still throw as in
/// the public gemm() entries. When `began` is non-null it is set to i+1
/// just before member i starts executing, so on a throw the caller knows
/// members [0, *began - 1) completed, member *began - 1 may be partial,
/// and the rest are untouched (*began == 0 means no C was written — the
/// shared scratch allocation itself failed).
void gemm_group_serial(const GroupMember* members, std::size_t count,
                       const PackedA* packed_a, const PackedB* packed_b,
                       const Plan& plan, std::size_t* began = nullptr);

}  // namespace detail

}  // namespace autogemm
