// autoGEMM public entry points.
//
// Semantics: C += A * B in fp32 (zero C first for the overwrite form, or
// call gemm_overwrite). Shapes: A is M x K, B is K x N, C is M x N, all
// row-major views with arbitrary leading dimensions.
#pragma once

#include <vector>

#include "common/matrix.hpp"
#include "common/threadpool.hpp"
#include "core/plan.hpp"

namespace autogemm {

/// B packed offline into cache-block-contiguous layout (sigma_packing =
/// offline). Built once per (B, plan) pair and reused across gemm calls —
/// the mode the ResNet-50 evaluation uses for constant weight matrices.
class PackedB {
 public:
  PackedB() = default;
  PackedB(common::ConstMatrixView b, const Plan& plan);

  const float* block(int p_idx, int j_idx) const;
  long block_ld() const { return ld_; }
  bool empty() const { return data_.empty(); }

 private:
  std::vector<float> data_;
  std::vector<std::size_t> offsets_;
  int kblocks_ = 0, nblocks_ = 0;
  long ld_ = 0;
};

/// C += A * B following the plan. `pool` enables the multithreaded path
/// (cache blocks of C are the scheduling unit; the K dimension is never
/// split, matching the paper's TVM-imposed limitation).
void gemm(common::ConstMatrixView a, common::ConstMatrixView b,
          common::MatrixView c, const Plan& plan,
          common::ThreadPool* pool = nullptr);

/// C += A * B with offline-packed B.
void gemm(common::ConstMatrixView a, const PackedB& packed_b,
          common::ConstMatrixView b_shape, common::MatrixView c,
          const Plan& plan, common::ThreadPool* pool = nullptr);

/// Convenience: heuristic plan, C += A * B.
void gemm(common::ConstMatrixView a, common::ConstMatrixView b,
          common::MatrixView c);

/// Convenience: zeroes C, then C = A * B.
void gemm_overwrite(common::ConstMatrixView a, common::ConstMatrixView b,
                    common::MatrixView c);

}  // namespace autogemm
