// Batched GEMM.
//
// DL inference issues many small GEMMs per step (the paper's motivating
// workload); batching lets the thread pool parallelize *across* problems
// — parallelism that is available even when each problem is too small to
// split on its own (single problems large enough in K go through the
// k-split path instead; see core/gemm.hpp).
#pragma once

#include <vector>

#include "common/matrix.hpp"
#include "common/threadpool.hpp"
#include "core/plan.hpp"

namespace autogemm {

class Context;

struct BatchItem {
  common::ConstMatrixView a;
  common::ConstMatrixView b;
  common::MatrixView c;
};

/// C_i += A_i * B_i for every item, all sharing one shape and plan.
/// With a pool, items run concurrently (each C_i is written by exactly one
/// worker).
void gemm_batched(const std::vector<BatchItem>& items, const Plan& plan,
                  common::ThreadPool* pool = nullptr);

/// Mixed-shape batch resolved through `ctx`: each item's plan comes from
/// the context's cache (tuned records, quarantine and stats all apply).
/// `pool` defaults to the context's own pool; pass one explicitly to
/// schedule on a different pool.
void gemm_batched(const std::vector<BatchItem>& items, Context& ctx,
                  common::ThreadPool* pool = nullptr);

/// Mixed-shape batch through the process-global default_context() — a
/// hidden dependency that ignores any Context the caller actually uses
/// (its tuned records, caches and health reporting). Route through the
/// Context overload above instead.
[[deprecated(
    "resolves plans through the process-global default_context(); use "
    "gemm_batched(items, ctx, pool)")]]
void gemm_batched(const std::vector<BatchItem>& items,
                  common::ThreadPool* pool = nullptr);

}  // namespace autogemm
