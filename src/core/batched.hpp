// Batched GEMM.
//
// DL inference issues many small GEMMs per step (the paper's motivating
// workload); batching lets the thread pool parallelize *across* problems
// — often the only available parallelism when each problem is too small
// to split (the same K-dimension constraint that limits Fig 9's
// multicore numbers).
#pragma once

#include <vector>

#include "common/matrix.hpp"
#include "common/threadpool.hpp"
#include "core/plan.hpp"

namespace autogemm {

struct BatchItem {
  common::ConstMatrixView a;
  common::ConstMatrixView b;
  common::MatrixView c;
};

/// C_i += A_i * B_i for every item, all sharing one shape and plan.
/// With a pool, items run concurrently (each C_i is written by exactly one
/// worker).
void gemm_batched(const std::vector<BatchItem>& items, const Plan& plan,
                  common::ThreadPool* pool = nullptr);

/// Mixed-shape batch: each item gets a heuristic per-shape plan (memoized
/// across equal shapes within the call).
void gemm_batched(const std::vector<BatchItem>& items,
                  common::ThreadPool* pool = nullptr);

}  // namespace autogemm
