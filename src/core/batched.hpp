// Batched GEMM.
//
// DL inference issues many small GEMMs per step (the paper's motivating
// workload); batching lets the thread pool parallelize *across* problems
// — parallelism that is available even when each problem is too small to
// split on its own (single problems large enough in K go through the
// k-split path instead; see core/gemm.hpp).
//
// Two callers share this path: dnn::graph batched model execution and the
// serve engine's shape-bucketed dispatch (src/serve/). Both route through
// Context::run_batched, which validates the whole batch (including
// cross-member aliasing, via validate_batch below) before any C is
// written and reports through Status instead of asserting.
#pragma once

#include <vector>

#include "common/matrix.hpp"
#include "common/status.hpp"
#include "common/threadpool.hpp"
#include "core/plan.hpp"

namespace autogemm {

class Context;

struct BatchItem {
  common::ConstMatrixView a;
  common::ConstMatrixView b;
  common::MatrixView c;
};

/// True when the two views' element ranges can overlap in memory. The
/// check is conservative: a view's range is the contiguous span from its
/// first to its last addressable element, so the ld gap between rows
/// counts as part of the span (two interleaved column blocks of one
/// parent matrix report overlap even though their elements are disjoint).
/// Row blocks of a shared parent are correctly seen as disjoint. Views
/// with a zero extent or a null pointer never overlap anything.
bool views_overlap(common::ConstMatrixView x, common::ConstMatrixView y);

/// Validates one batch member the way Context::run validates a single
/// canonical call: non-negative dims, leading dims at least the row
/// width, no null pointer with nonzero extent, inner dimensions agreeing,
/// C matching op(A)*op(B), and C not overlapping this member's own A or B
/// (range overlap, stricter than run()'s exact-pointer check — batch
/// members are dispatched concurrently, so partial aliasing is never
/// benign here).
Status validate_batch_item(const BatchItem& item);

/// Validates a whole batch: every member individually, then cross-member
/// aliasing — no member's C may overlap another member's A, B or C
/// (members run concurrently and in unspecified order). Shared *read*
/// operands (the same A or B view appearing in many members) are legal
/// and are what the serve engine's shape buckets exploit. Returns the
/// first violation found, naming the item index; nothing is written by
/// validation.
Status validate_batch(const std::vector<BatchItem>& items);

/// Indices of members whose C overlaps another member's A, B or C — the
/// set validate_batch's cross-member pass would reject (both sides of
/// each overlapping pair are reported). The serve engine uses this to
/// demote conflicting members to single-shot dispatches instead of
/// failing the whole batch. O(B log B) in the batch size.
std::vector<std::size_t> find_cross_member_conflicts(
    const std::vector<BatchItem>& items);

/// C_i += A_i * B_i for every item, all sharing one shape and plan.
/// With a pool, items run concurrently (each C_i is written by exactly one
/// worker).
void gemm_batched(const std::vector<BatchItem>& items, const Plan& plan,
                  common::ThreadPool* pool = nullptr);

/// Mixed-shape batch resolved through `ctx`: each item's plan comes from
/// the context's cache (tuned records, quarantine and stats all apply).
/// `pool` defaults to the context's own pool; pass one explicitly to
/// schedule on a different pool. Thin legacy wrapper — new code should
/// call Context::run_batched, which adds whole-batch validation and
/// Status reporting.
void gemm_batched(const std::vector<BatchItem>& items, Context& ctx,
                  common::ThreadPool* pool = nullptr);

// The PR-3-era overload that resolved plans through the process-global
// default_context() has been removed: it ignored the Context the caller
// actually configured (tuned records, caches, health reporting). Call
// gemm_batched(items, ctx, pool) or Context::run_batched instead.

}  // namespace autogemm
