#!/usr/bin/env bash
# CI driver: build and test the two supported configurations.
#
#   tools/ci.sh            # release + asan, full ctest in each
#   tools/ci.sh release    # just one configuration
#
# The asan configuration builds with -fsanitize=address,undefined (the
# AUTOGEMM_SANITIZE CMake option / the "asan" preset); the concurrent
# Context tests in particular are expected to pass under it. The release
# configuration also re-runs the parallel-path suites with a 4-worker pool
# and runs the context cache-hit and large-K scaling benches once, so the
# JSON artifacts land in build/bench_context_cache.json and
# build/BENCH_kscale.json. An obs smoke pass then runs a traced parallel
# GEMM through the CLI, validates the Chrome-trace export and Prometheus
# text, and runs the (non-gating) obs overhead bench. A serve smoke pass
# replays the canned request trace through the serving engine twice —
# once at low load (zero sheds, clean accounting, results verified) and
# once with a fault-injected full queue (explicit overload events, still
# clean accounting) — then drives 20 seeds of the chaos harness through
# `autogemm chaos` (dispatcher crash/stall, allocation/execution/verify
# faults; any invariant violation is a nonzero exit) and runs the serve
# coalescing + graceful-drain bench, copying its JSON to BENCH_serve.json
# at the repo root. A sharded-serving pass then replays the same trace
# through a 2-shard ShardedEngine (clean low-load replay, then a
# stall-injected run that must divert work via the router's bounded
# stealing), runs 6 chaos seeds with --shards 2, and runs the open-loop
# scale bench (bench_serve_scale), whose `scale acceptance ... PASS` line
# gates on the 2-shard fleet completing strictly more goodput than 1
# shard at the same offered load; its JSON is copied to
# BENCH_serve_scale.json at the repo root. The serve tests also run under
# the asan configuration via the regular ctest pass, and the asan
# configuration repeats the 20-seed chaos pass plus the 6-seed sharded
# chaos pass under the sanitizers.
#
# The release configuration ends with the backend matrix: the full ctest
# suite re-runs under AUTOGEMM_BACKEND=neon and =sve_sim (kAuto contexts
# resolve through the env, so every registered tier serves the whole test
# load), followed by the NEON vs simulated-SVE vs reference_gemm
# crosscheck over an irregular-tile sweep (tools/autogemm crosscheck).
#
# Every ctest invocation carries a per-test timeout: a test that hangs (the
# exact failure mode the sim watchdogs and thread-pool hardening exist to
# prevent) fails CI instead of wedging it. The release configuration
# additionally runs a fault-injection pass that re-executes the hardening
# suites with AUTOGEMM_FAILPOINTS set, proving the env-var arming path
# works in the shipped binary, not just the in-process API.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
test_timeout=${AUTOGEMM_CI_TEST_TIMEOUT:-120}  # seconds per test
configs=("$@")
[[ ${#configs[@]} -eq 0 ]] && configs=(release asan)

run_config() {
  local name=$1 dir=$2
  shift 2
  echo "==== [$name] configure ===="
  cmake -B "$dir" -S . "$@"
  echo "==== [$name] build ===="
  cmake --build "$dir" -j "$jobs"
  echo "==== [$name] ctest (timeout ${test_timeout}s/test) ===="
  ctest --test-dir "$dir" --output-on-failure -j "$jobs" \
    --timeout "$test_timeout"
}

fault_injection_pass() {
  local dir=$1
  echo "==== [fault-injection] env-armed failpoints ===="
  # Arm a benign failpoint through the environment: the FailpointEnv suite
  # proves static init picked it up in the shipped binary. Run alone —
  # the other hardening suites reset the failpoint registry in teardown.
  AUTOGEMM_FAILPOINTS=ci.smoke \
    "$dir/tests/autogemm_tests" --gtest_filter='FailpointEnv.*'
  echo "==== [fault-injection] injected-fault suites ===="
  "$dir/tests/autogemm_tests" --gtest_filter='Failpoints.*:Robustness.*'
}

for config in "${configs[@]}"; do
  case "$config" in
    release)
      run_config release build -DCMAKE_BUILD_TYPE=Release
      fault_injection_pass build
      echo "==== [release] multi-thread pass (pooled, threads=4) ===="
      # Re-run the parallel-path suites with an explicit 4-worker pool: the
      # strategy heuristic, the k-split determinism contract and the pooled
      # Context/batched paths must hold regardless of host core count.
      AUTOGEMM_TEST_THREADS=4 ./build/tests/autogemm_tests \
        --gtest_filter='Parallel*:KSplit*:PackedPadding*:ThreadPool*:Context*:Batched*'
      echo "==== [release] context cache bench ===="
      ./build/bench/bench_context_cache build/bench_context_cache.json
      echo "==== [release] large-K scaling bench ===="
      ./build/bench/bench_kscale build/BENCH_kscale.json 4
      echo "==== [release] obs smoke (trace + metrics + report) ===="
      # Traced parallel k-split GEMM: the export must be valid JSON, carry
      # the pack/kernel/reduce phase spans on distinct worker lanes, and
      # the Prometheus text must expose the core counter families.
      ./build/tools/autogemm trace 8 8 8192 --threads 4 --strategy ksplit \
        --out build/obs_smoke_trace.json --metrics build/obs_smoke_metrics.prom
      python3 -m json.tool build/obs_smoke_trace.json > /dev/null
      python3 tools/trace_report.py build/obs_smoke_trace.json \
        --require pack_a,kernel,reduce
      grep -q 'autogemm_gemm_calls_total' build/obs_smoke_metrics.prom
      grep -q 'autogemm_gemm_seconds_bucket' build/obs_smoke_metrics.prom
      echo "==== [release] obs overhead bench (non-gating) ===="
      ./build/bench/bench_obs_overhead --json-out build/bench_obs_overhead.json \
        || true
      echo "==== [release] serve smoke: low load ===="
      # The canned trace at low load must admit everything (no sheds, no
      # rejects), verify results against the reference, and balance the
      # books.
      ./build/tools/autogemm serve-replay tools/traces/serve_smoke.trace \
        --verify | tee build/serve_smoke_low.txt
      grep -q 'overload_events=0 accounting=clean' build/serve_smoke_low.txt
      echo "==== [release] serve smoke: forced overload ===="
      # Fault-injected full queue against a small capacity: overload must
      # surface as explicit sheds/rejects (nonzero overload events), never
      # as broken accounting.
      AUTOGEMM_FAILPOINTS='serve.queue_full=40' \
        ./build/tools/autogemm serve-replay tools/traces/serve_smoke.trace \
        --capacity 16 | tee build/serve_smoke_overload.txt
      grep -q 'accounting=clean' build/serve_smoke_overload.txt
      grep -Eq 'overload_events=[1-9]' build/serve_smoke_overload.txt
      echo "==== [release] serve chaos pass (20 seeds) ===="
      # Seeded chaos harness through the CLI: 20 distinct seeds of the
      # multi-threaded workload with failpoint combinations firing
      # (dispatcher crash/stall, allocation failure, overload, execution
      # and verification faults). Exit is nonzero on any invariant
      # violation — unresolved future, dishonest status, corrupted C, or
      # broken accounting.
      ./build/tools/autogemm chaos --seed 1 --seeds 20 \
        | tee build/serve_chaos.txt
      grep -q 'chaos: seeds=20 violations=0' build/serve_chaos.txt
      echo "==== [release] serve coalescing bench ===="
      ./build/bench/bench_serve --json-out build/bench_serve.json \
        | tee build/serve_bench.txt
      grep -q 'speedup (batch=8 vs single-dispatch)' build/serve_bench.txt
      grep -q 'drain: backlog=' build/serve_bench.txt
      cp build/bench_serve.json BENCH_serve.json
      echo "==== [release] online-tuning smoke: serve-replay --tune ===="
      # Repeated-irregular-shape trace with the online tuner (model-cost,
      # deterministic): pass one must promote at least one searched config
      # while the replay's futures are in flight and persist it; pass two
      # must load the records file and resolve the promoted shapes through
      # the exact rung with no new promotions — the records round trip.
      rm -f build/online_tune_records.txt
      ./build/tools/autogemm serve-replay tools/traces/online_tune.trace \
        --verify --tune --records build/online_tune_records.txt \
        | tee build/online_tune_first.txt
      grep -q 'accounting=clean' build/online_tune_first.txt
      grep -Eq 'tuning: .*promotions=[1-9]' build/online_tune_first.txt
      grep -Eq 'tuning: .*persisted=[1-9]' build/online_tune_first.txt
      ./build/tools/autogemm serve-replay tools/traces/online_tune.trace \
        --verify --tune --records build/online_tune_records.txt \
        | tee build/online_tune_second.txt
      grep -q 'accounting=clean' build/online_tune_second.txt
      grep -Eq 'tuning: .*records_loaded=1' build/online_tune_second.txt
      grep -Eq 'tuning: .*resolved_exact=[1-9]' build/online_tune_second.txt
      echo "==== [release] online tuning bench ===="
      # Real wall-clock tuning beside live traffic; the JSON carries
      # baseline/concurrent/tuned p50+p99 and the dispatcher-impact ratio.
      ./build/bench/bench_online_tune 120 100 \
        --json-out build/bench_online_tune.json \
        | tee build/online_tune_bench.txt
      grep -q 'concurrent p99 / baseline p99' build/online_tune_bench.txt
      cp build/bench_online_tune.json BENCH_online_tune.json
      echo "==== [release] sharded serve smoke: 2-shard replay ===="
      # The canned trace through a 2-shard ShardedEngine: deterministic
      # shape-hash routing must spread the trace across both workers, all
      # futures resolve, and the aggregate plus every shard balances.
      ./build/tools/autogemm serve-replay tools/traces/serve_smoke.trace \
        --verify --shards 2 | tee build/serve_smoke_sharded.txt
      grep -q 'overload_events=0 accounting=clean' \
        build/serve_smoke_sharded.txt
      grep -q 'shards: n=2' build/serve_smoke_sharded.txt
      echo "==== [release] sharded serve smoke: stall-driven stealing ===="
      # Stall one dispatcher via the env-armed failpoint against a small
      # queue: the router's bounded work-stealing must divert backlog to
      # the healthy shard (nonzero steals) with the books still clean.
      AUTOGEMM_FAILPOINTS='serve.dispatcher_stall=1' \
        ./build/tools/autogemm serve-replay tools/traces/serve_smoke.trace \
        --shards 2 --capacity 16 | tee build/serve_smoke_steal.txt
      grep -q 'accounting=clean' build/serve_smoke_steal.txt
      grep -Eq 'steals=[1-9]' build/serve_smoke_steal.txt
      echo "==== [release] sharded serve chaos pass (6 seeds, 2 shards) ===="
      # Chaos with the fleet in the loop: per-shard failure isolation,
      # stealing under stalls and the merged accounting must survive the
      # same failpoint storms the single-engine pass runs.
      ./build/tools/autogemm chaos --seed 1 --seeds 6 --shards 2 \
        | tee build/serve_chaos_sharded.txt
      grep -q 'chaos: seeds=6 violations=0' build/serve_chaos_sharded.txt
      echo "==== [release] serve scale-out bench (open-loop, 1 vs 2 shards) ===="
      # Open-loop offered-load sweep: the gating acceptance line requires
      # the 2-shard fleet to complete strictly more goodput than 1 shard
      # at every overloaded point, with clean accounting on all of them.
      ./build/bench/bench_serve_scale --json-out build/bench_serve_scale.json \
        | tee build/serve_scale_bench.txt
      grep -Eq 'scale acceptance.*PASS' build/serve_scale_bench.txt
      cp build/bench_serve_scale.json BENCH_serve_scale.json
      echo "==== [release] backend matrix (AUTOGEMM_BACKEND=neon|sve_sim) ===="
      # The tier-1 suite must hold under every registered backend: kAuto
      # contexts resolve through the env override, so this exercises the
      # compiled-NEON and portable-fallback-plus-SVE-probe paths end to end.
      for backend in neon sve_sim; do
        echo "---- backend=$backend ----"
        AUTOGEMM_BACKEND=$backend ctest --test-dir build --output-on-failure \
          -j "$jobs" --timeout "$test_timeout"
      done
      echo "==== [release] backend crosscheck (neon vs sve_sim vs reference) ===="
      # Irregular-tile sweep: the compiled NEON host kernels and the
      # generated predicated SVE programs (interpreted at every VL from the
      # generation width up to 512-bit) must all agree with reference_gemm.
      ./build/tools/autogemm crosscheck | tee build/backend_crosscheck.txt
      grep -Eq 'crosscheck: tiles=[0-9]+ checks=[0-9]+ failures=0' \
        build/backend_crosscheck.txt
      echo "==== [release] quantized crosscheck (portable vs widening vs fp64) ===="
      # The int8 leg over the same irregular tiles: both quantized kernels
      # must meet the 1e-2 relative-Frobenius contract against the fp64
      # reference AND agree with each other bit-for-bit (integer
      # accumulation is exact on both paths).
      ./build/tools/autogemm crosscheck --dtype int8 \
        | tee build/quant_crosscheck.txt
      grep -Eq 'crosscheck: dtype=i8 tiles=[0-9]+ checks=[0-9]+ failures=0' \
        build/quant_crosscheck.txt
      echo "==== [release] quantized serve smoke: GPT-2 decode trace ===="
      # The mixed fp32/int8 token-generation trace (prefill burst + skinny-M
      # decode steps) through a 2-shard fleet: every future resolves, fp32
      # results verify elementwise, int8 results verify against the norm
      # contract, and the books balance on the aggregate and every shard.
      ./build/tools/autogemm serve-replay tools/traces/gpt2_decode.trace \
        --verify --shards 2 | tee build/quant_serve_smoke.txt
      grep -q 'overload_events=0 accounting=clean' build/quant_serve_smoke.txt
      echo "==== [release] quantized GEMM bench ===="
      # Gates the int8 tier's twin contract: rel-err <= 1e-2 vs fp64 on
      # every shape AND >= 1.3x over fp32 at the compute-bound shapes.
      ./build/bench/bench_quant --json-out build/bench_quant.json \
        | tee build/quant_bench.txt
      grep -q 'quant acceptance: PASS' build/quant_bench.txt
      cp build/bench_quant.json BENCH_quant.json
      echo "==== [release] quantized serving bench (mixed dtype, 2 shards) ===="
      # Open-loop GPT-2-style mixed trace: zero unresolved futures, clean
      # accounting everywhere, both tiers completing; the JSON carries the
      # fp32-vs-int8 goodput and p99 split.
      ./build/bench/bench_quant_serve \
        --json-out build/bench_quant_serve.json \
        | tee build/quant_serve_bench.txt
      grep -Eq 'quant serve acceptance.*PASS' build/quant_serve_bench.txt
      cp build/bench_quant_serve.json BENCH_quant_serve.json
      ;;
    asan)
      run_config asan build-asan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DAUTOGEMM_SANITIZE=ON
      echo "==== [asan] serve chaos pass (20 seeds) ===="
      # The same 20 chaos seeds under address/undefined sanitizers: the
      # crash/stall recovery and abandoned-thread bookkeeping must be
      # leak- and race-of-lifetime-free, not just functionally clean.
      ./build-asan/tools/autogemm chaos --seed 1 --seeds 20 \
        | tee build-asan/serve_chaos.txt
      grep -q 'chaos: seeds=20 violations=0' build-asan/serve_chaos.txt
      echo "==== [asan] sharded serve chaos pass (6 seeds, 2 shards) ===="
      # The fleet's cross-shard machinery — router stealing, tuner
      # fan-out, concurrent drain, shard teardown — under the sanitizers.
      ./build-asan/tools/autogemm chaos --seed 1 --seeds 6 --shards 2 \
        | tee build-asan/serve_chaos_sharded.txt
      grep -q 'chaos: seeds=6 violations=0' build-asan/serve_chaos_sharded.txt
      echo "==== [asan] quantized crosscheck ===="
      # Bit-identity between the portable and SIMD int8 paths must hold
      # with the sanitizers' memory layout too — scale/pack buffers are
      # the quant tier's pointer-heavy surface.
      ./build-asan/tools/autogemm crosscheck --dtype int8 \
        | tee build-asan/quant_crosscheck.txt
      grep -Eq 'crosscheck: dtype=i8 tiles=[0-9]+ checks=[0-9]+ failures=0' \
        build-asan/quant_crosscheck.txt
      echo "==== [asan] quantized serve smoke: GPT-2 decode trace ===="
      ./build-asan/tools/autogemm serve-replay \
        tools/traces/gpt2_decode.trace --drain-timeout-us 2000000 \
        --verify --shards 2 | tee build-asan/quant_serve_smoke.txt
      grep -q 'overload_events=0 accounting=clean' \
        build-asan/quant_serve_smoke.txt
      echo "==== [asan] quantized GEMM bench ===="
      # The accuracy gate is exact under ASan; the 1.3x compute-bound
      # speedup gate also holds because instrumentation slows fp32 and
      # int8 alike (both sides are measured in the same binary).
      ./build-asan/bench/bench_quant --json-out build-asan/bench_quant.json \
        | tee build-asan/quant_bench.txt
      grep -q 'quant acceptance: PASS' build-asan/quant_bench.txt
      echo "==== [asan] quantized serving bench (mixed dtype, 2 shards) ===="
      ./build-asan/bench/bench_quant_serve 0.3 \
        --json-out build-asan/bench_quant_serve.json \
        | tee build-asan/quant_serve_bench.txt
      grep -Eq 'quant serve acceptance.*PASS' build-asan/quant_serve_bench.txt
      ;;
    *)
      echo "unknown config: $config (expected release or asan)" >&2
      exit 2
      ;;
  esac
done
echo "==== ci: all configurations passed ===="
