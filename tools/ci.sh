#!/usr/bin/env bash
# CI driver: build and test the two supported configurations.
#
#   tools/ci.sh            # release + asan, full ctest in each
#   tools/ci.sh release    # just one configuration
#
# The asan configuration builds with -fsanitize=address,undefined (the
# AUTOGEMM_SANITIZE CMake option / the "asan" preset); the concurrent
# Context tests in particular are expected to pass under it. Also runs the
# context cache-hit bench once in release so the JSON artifact lands in
# build/bench_context_cache.json.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
configs=("$@")
[[ ${#configs[@]} -eq 0 ]] && configs=(release asan)

run_config() {
  local name=$1 dir=$2
  shift 2
  echo "==== [$name] configure ===="
  cmake -B "$dir" -S . "$@"
  echo "==== [$name] build ===="
  cmake --build "$dir" -j "$jobs"
  echo "==== [$name] ctest ===="
  ctest --test-dir "$dir" --output-on-failure -j "$jobs"
}

for config in "${configs[@]}"; do
  case "$config" in
    release)
      run_config release build -DCMAKE_BUILD_TYPE=Release
      echo "==== [release] context cache bench ===="
      ./build/bench/bench_context_cache build/bench_context_cache.json
      ;;
    asan)
      run_config asan build-asan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DAUTOGEMM_SANITIZE=ON
      ;;
    *)
      echo "unknown config: $config (expected release or asan)" >&2
      exit 2
      ;;
  esac
done
echo "==== ci: all configurations passed ===="
