#!/usr/bin/env python3
"""Phase-breakdown table from an autogemm Chrome trace.

Reads the trace-event JSON written by `autogemm trace` (or
obs::Tracer::write_chrome_json) and reproduces the paper's phase
attribution (SS III: packing vs micro-kernel vs write-back/reduction) from
measured spans instead of modeled cycles.

Durations are *self* times: a span's duration minus the durations of the
spans nested directly inside it on the same lane, so a container like
gemm.ksplit contributes only its scheduling overhead, not its children's
work. Phases aggregate span names:

    pack_a, pack_b          -> packing
    kernel                  -> micro-kernel
    reduce                  -> reduce
    everything else         -> other (dispatch, planning, probes, ...)

Usage:
    tools/trace_report.py trace.json
    tools/trace_report.py trace.json --require pack_a,kernel,reduce
    tools/trace_report.py trace.json --json
"""

import argparse
import json
import sys
from collections import defaultdict

PHASE_OF = {
    "pack_a": "packing",
    "pack_b": "packing",
    "kernel": "micro-kernel",
    "reduce": "reduce",
}


def load_events(path):
    with open(path) as f:
        doc = json.load(f)
    if isinstance(doc, list):
        return doc
    return doc.get("traceEvents", [])


def self_times(events):
    """Per-(pid, tid) self-time attribution via an interval stack."""
    lanes = {}
    spans = defaultdict(list)
    for ev in events:
        ph = ev.get("ph")
        if ph == "M" and ev.get("name") == "thread_name":
            lanes[(ev["pid"], ev["tid"])] = ev["args"]["name"]
        elif ph == "X":
            spans[(ev["pid"], ev["tid"])].append(ev)

    totals = defaultdict(lambda: {"self_us": 0.0, "total_us": 0.0, "count": 0})
    lane_spans = {}
    for key, evs in spans.items():
        # Earliest first; at equal start the longer span is the container.
        evs.sort(key=lambda e: (e["ts"], -e.get("dur", 0.0)))
        child_us = defaultdict(float)
        stack = []
        for ev in evs:
            dur = ev.get("dur", 0.0)
            while stack and ev["ts"] >= stack[-1]["ts"] + stack[-1].get(
                "dur", 0.0
            ) - 1e-9:
                stack.pop()
            if stack:
                child_us[id(stack[-1])] += dur
            stack.append(ev)
        for ev in evs:
            dur = ev.get("dur", 0.0)
            t = totals[ev["name"]]
            t["self_us"] += max(0.0, dur - child_us[id(ev)])
            t["total_us"] += dur
            t["count"] += 1
        lane_spans[key] = len(evs)
    return totals, lanes, lane_spans


def main():
    ap = argparse.ArgumentParser(
        description="phase-breakdown table from an autogemm Chrome trace"
    )
    ap.add_argument("trace", help="trace-event JSON file")
    ap.add_argument(
        "--require",
        default="",
        help="comma-separated span names that must appear (exit 1 otherwise)",
    )
    ap.add_argument(
        "--json", action="store_true", help="emit the tables as one JSON object"
    )
    args = ap.parse_args()

    events = load_events(args.trace)
    totals, lanes, lane_spans = self_times(events)

    required = [name for name in args.require.split(",") if name]
    missing = [name for name in required if name not in totals]
    if missing:
        print(
            "trace_report: missing required span(s): " + ", ".join(missing),
            file=sys.stderr,
        )
        return 1

    grand_self = sum(t["self_us"] for t in totals.values()) or 1.0
    phases = defaultdict(lambda: {"self_us": 0.0, "count": 0})
    for name, t in totals.items():
        phase = PHASE_OF.get(name, "other")
        phases[phase]["self_us"] += t["self_us"]
        phases[phase]["count"] += t["count"]

    if args.json:
        out = {
            "spans": {
                name: {
                    "count": t["count"],
                    "self_ms": t["self_us"] / 1e3,
                    "total_ms": t["total_us"] / 1e3,
                    "share": t["self_us"] / grand_self,
                }
                for name, t in totals.items()
            },
            "phases": {
                phase: {
                    "self_ms": p["self_us"] / 1e3,
                    "share": p["self_us"] / grand_self,
                    "count": p["count"],
                }
                for phase, p in phases.items()
            },
            "lanes": {
                lanes.get(key, f"pid{key[0]}-tid{key[1]}"): count
                for key, count in lane_spans.items()
            },
        }
        print(json.dumps(out, indent=2, sort_keys=True))
        return 0

    print(f"{'span':<20} {'count':>8} {'self ms':>12} {'share':>8} "
          f"{'total ms':>12}")
    for name, t in sorted(
        totals.items(), key=lambda kv: -kv[1]["self_us"]
    ):
        print(
            f"{name:<20} {t['count']:>8} {t['self_us'] / 1e3:>12.3f} "
            f"{t['self_us'] / grand_self:>7.1%} {t['total_us'] / 1e3:>12.3f}"
        )

    print()
    print(f"{'phase':<20} {'self ms':>12} {'share':>8} {'spans':>8}")
    for phase, p in sorted(phases.items(), key=lambda kv: -kv[1]["self_us"]):
        print(
            f"{phase:<20} {p['self_us'] / 1e3:>12.3f} "
            f"{p['self_us'] / grand_self:>7.1%} {p['count']:>8}"
        )

    print()
    print(f"{len(lane_spans)} lane(s):")
    for key, count in sorted(lane_spans.items()):
        name = lanes.get(key, f"pid{key[0]}-tid{key[1]}")
        print(f"  {name:<16} {count} span(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
