// autogemm command-line tool.
//
//   autogemm chips                          list chip models
//   autogemm asm MR NR KC [--rotate] [--lanes L]
//                                           print a generated kernel
//   autogemm tiles MC NC KC [--chip NAME]   show the DMT tiling
//   autogemm price M N K [--chip NAME] [--threads T]
//                                           price every library on a chip
//   autogemm run M N K [--reps R]           execute on this host, verified
//   autogemm tune M N K [--out FILE]        model-pruned parameter search
//   autogemm trace M N K [--threads T] [--reps R] [--strategy S]
//                        [--out FILE] [--metrics FILE]
//                                           traced GEMM -> Chrome trace
//   autogemm serve-replay TRACE [--capacity N] [--max-batch N]
//                        [--window-us U] [--deadline-us U] [--threads T]
//                        [--repeat R] [--verify] [--drain-timeout-us U]
//                                           replay a shape trace against
//                                           the serve engine
//   autogemm chaos [--seed S] [--seeds N] [--submitters T] [--requests R]
//                                           seeded chaos runs against the
//                                           serve engine (CI resilience gate)
//   autogemm crosscheck [--kc K] [--dtype f32|int8]
//                                           f32: NEON host path vs simulated
//                                           -SVE vs reference; int8: portable
//                                           vs widening quantized kernels vs
//                                           fp64 reference (CI gates)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "backend/backend.hpp"
#include "baselines/library_zoo.hpp"
#include "baselines/pricer.hpp"
#include "codegen/generator.hpp"
#include "common/reference_gemm.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/context.hpp"
#include "core/gemm.hpp"
#include "hw/chip_database.hpp"
#include "isa/asm_printer.hpp"
#include "kernels/dispatch.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "quant/qgemm.hpp"
#include "serve/chaos.hpp"
#include "serve/engine.hpp"
#include "serve/router.hpp"
#include "sim/interpreter.hpp"
#include "tiling/micro_tiling.hpp"
#include "tune/records.hpp"
#include "tune/tuner.hpp"

namespace {

using namespace autogemm;

int usage() {
  std::fprintf(
      stderr,
      "usage: autogemm <command> [args]\n"
      "  chips                                   list chip models\n"
      "  asm MR NR KC [--rotate] [--lanes L]     print generated kernel\n"
      "  tiles MC NC KC [--chip NAME]            show DMT tiling\n"
      "  price M N K [--chip NAME] [--threads T] price all libraries\n"
      "  run M N K [--reps R]                    execute + verify on host\n"
      "  tune M N K [--out FILE]                 model-pruned tuning\n"
      "  trace M N K [--threads T] [--reps R] [--strategy auto|blocks|ksplit]\n"
      "              [--out FILE] [--metrics FILE]\n"
      "                                          traced GEMM -> Chrome trace\n"
      "                                          (open in chrome://tracing;\n"
      "                                          tools/trace_report.py makes\n"
      "                                          the phase table)\n"
      "  serve-replay TRACE [--capacity N] [--max-batch N] [--window-us U]\n"
      "               [--deadline-us U] [--threads T] [--repeat R] [--verify]\n"
      "               [--drain-timeout-us U] [--tune] [--records FILE]\n"
      "               [--shards N]\n"
      "                                          replay a shape trace (lines\n"
      "                                          of `M N K [count] [lane]\n"
      "                                          [dtype]`, dtype f32|int8)\n"
      "                                          against the serve engine;\n"
      "                                          --drain-timeout-us bounds the\n"
      "                                          graceful drain; --tune runs\n"
      "                                          an online-tuner cycle over\n"
      "                                          the replay's hot shapes\n"
      "                                          (model-cost, deterministic),\n"
      "                                          --records FILE loads prior\n"
      "                                          promotions and persists new\n"
      "                                          ones (merge-on-save);\n"
      "                                          --shards N replays through a\n"
      "                                          sharded multi-engine fleet\n"
      "  chaos [--seed S] [--seeds N] [--submitters T] [--requests R]\n"
      "        [--shards N]\n"
      "                                          seeded fault-injection runs\n"
      "                                          against the serve engine; any\n"
      "                                          invariant violation is fatal\n"
      "  crosscheck [--kc K] [--dtype f32|int8]  f32: NEON host path vs\n"
      "                                          simulated SVE vs reference;\n"
      "                                          int8: portable vs widening\n"
      "                                          quantized kernels vs fp64\n"
      "                                          reference, on irregular tiles\n");
  return 2;
}

const char* flag_value(int argc, char** argv, const char* name,
                       const char* fallback) {
  for (int i = 0; i < argc - 1; ++i)
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  return fallback;
}

bool has_flag(int argc, char** argv, const char* name) {
  for (int i = 0; i < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return true;
  return false;
}

hw::Chip chip_by_name(const std::string& name) {
  for (const auto chip :
       {hw::Chip::kReference, hw::Chip::kKP920, hw::Chip::kGraviton2,
        hw::Chip::kAltra, hw::Chip::kM2, hw::Chip::kA64FX,
        hw::Chip::kGraviton3}) {
    if (name == hw::chip_name(chip)) return chip;
  }
  throw std::invalid_argument("unknown chip: " + name +
                              " (try `autogemm chips`)");
}

int cmd_chips() {
  std::printf("%-11s %6s %6s %6s %9s %12s %10s\n", "name", "cores", "GHz",
              "lanes", "sigma_AI", "peak GF/core", "DRAM GB/s");
  for (const auto chip :
       {hw::Chip::kReference, hw::Chip::kKP920, hw::Chip::kGraviton2,
        hw::Chip::kAltra, hw::Chip::kM2, hw::Chip::kA64FX,
        hw::Chip::kGraviton3}) {
    const auto h = hw::chip_model(chip);
    std::printf("%-11s %6d %6.2f %6d %9.1f %12.1f %10.0f\n", h.name.c_str(),
                h.topology.cores, h.freq_ghz, h.lanes, h.sigma_ai,
                h.peak_gflops_core(), h.dram_bw_gbs);
  }
  return 0;
}

int cmd_asm(int argc, char** argv) {
  if (argc < 3) return usage();
  const int mr = std::atoi(argv[0]);
  const int nr = std::atoi(argv[1]);
  const int kc = std::atoi(argv[2]);
  codegen::GeneratorOptions opts;
  opts.rotate_registers = has_flag(argc, argv, "--rotate");
  const int lanes = std::atoi(flag_value(argc, argv, "--lanes", "4"));
  const auto mk = codegen::generate_microkernel(mr, nr, kc, lanes, opts);
  std::printf("%s", isa::emit_cpp_wrapper(mk.program).c_str());
  return 0;
}

int cmd_tiles(int argc, char** argv) {
  if (argc < 3) return usage();
  const int mc = std::atoi(argv[0]);
  const int nc = std::atoi(argv[1]);
  const int kc = std::atoi(argv[2]);
  const auto chip = chip_by_name(flag_value(argc, argv, "--chip", "KP920"));
  const auto h = hw::chip_model(chip);
  const auto r = tiling::tile_dmt(mc, nc, kc, h);
  std::printf("DMT on %s for C(%d,%d), kc=%d: %zu tiles, %d padded, %d "
              "low-AI, %.0f projected cycles\n",
              h.name.c_str(), mc, nc, kc, r.tiles.size(), r.padded_tiles,
              r.low_ai_tiles, r.projected_cycles);
  std::printf("split: n_front=%d m_front_up=%d m_back_up=%d\n", r.n_front,
              r.m_front_up, r.m_back_up);
  for (const auto& t : r.tiles)
    std::printf("  (%3d,%3d) %dx%d%s\n", t.row, t.col, t.mr, t.nr,
                t.padded() ? " [clipped]" : "");
  return 0;
}

int cmd_price(int argc, char** argv) {
  if (argc < 3) return usage();
  const long m = std::atol(argv[0]);
  const long n = std::atol(argv[1]);
  const long k = std::atol(argv[2]);
  const auto chip = chip_by_name(flag_value(argc, argv, "--chip", "KP920"));
  const auto h = hw::chip_model(chip);
  baselines::PriceOptions popts;
  popts.threads = std::atoi(flag_value(argc, argv, "--threads", "1"));
  std::printf("%ldx%ldx%ld on %s, %d thread(s):\n", m, n, k, h.name.c_str(),
              popts.threads);
  std::printf("%-11s %12s %10s %12s\n", "library", "cycles", "GFLOPS",
              "efficiency");
  for (const auto lib : baselines::table_one_libraries()) {
    if (!baselines::supports_shape(lib, m, n, k)) {
      std::printf("%-11s %12s\n", baselines::library_name(lib), "N/A");
      continue;
    }
    const auto p = baselines::price_gemm(lib, m, n, k, h, popts);
    std::printf("%-11s %12.0f %10.1f %11.1f%%\n", baselines::library_name(lib),
                p.cycles, p.gflops, p.efficiency * 100);
  }
  return 0;
}

int cmd_run(int argc, char** argv) {
  if (argc < 3) return usage();
  const int m = std::atoi(argv[0]);
  const int n = std::atoi(argv[1]);
  const int k = std::atoi(argv[2]);
  const int reps = std::atoi(flag_value(argc, argv, "--reps", "10"));
  common::Matrix a(m, k), b(k, n), c(m, n), c_ref(m, n);
  common::fill_random(a.view(), 1);
  common::fill_random(b.view(), 2);
  common::reference_gemm(a.view(), b.view(), c_ref.view());
  Plan plan(m, n, k, default_config(m, n, k));
  gemm(a.view(), b.view(), c.view(), plan);
  std::printf("max relative error: %.2e\n",
              common::max_rel_error(c.view(), c_ref.view()));
  common::Timer t;
  for (int i = 0; i < reps; ++i) gemm(a.view(), b.view(), c.view(), plan);
  const double seconds = t.seconds() / reps;
  std::printf("%.3f ms/call, %.2f GFLOPS (plan mc=%d nc=%d kc=%d)\n",
              seconds * 1e3, common::gemm_flops(m, n, k) / seconds / 1e9,
              plan.config().mc, plan.config().nc, plan.config().kc);
  return 0;
}

int cmd_tune(int argc, char** argv) {
  if (argc < 3) return usage();
  const int m = std::atoi(argv[0]);
  const int n = std::atoi(argv[1]);
  const int k = std::atoi(argv[2]);
  const char* out = flag_value(argc, argv, "--out", nullptr);
  const auto h = hw::chip_model(hw::Chip::kGraviton2);
  const auto space = tune::enumerate_space(m, n, k, /*divisors_only=*/false);
  const auto model = [&](const tune::Candidate& c) {
    return tune::model_cost(c, m, n, k, h);
  };
  const auto result = tune::tune_model_pruned(space, model, model, 0.02, 16);
  std::printf("space %zu candidates, %ld evaluated, best %.0f model cycles\n",
              space.size(), result.evaluations, result.best_cost);
  std::printf("best: mc=%d nc=%d kc=%d order=%s packing=%d\n", result.best.mc,
              result.best.nc, result.best.kc,
              loop_order_name(result.best.loop_order),
              static_cast<int>(result.best.packing));
  if (out != nullptr) {
    tune::TuningRecords records;
    if (!records.load_file(out)) { /* start fresh */ }
    records.add({m, n, k}, result.best, result.best_cost);
    if (!records.save_file(out)) {
      std::fprintf(stderr, "cannot write %s\n", out);
      return 1;
    }
    std::printf("recorded into %s (%zu records)\n", out, records.size());
  }
  return 0;
}

int cmd_trace(int argc, char** argv) {
  if (argc < 3) return usage();
  const int m = std::atoi(argv[0]);
  const int n = std::atoi(argv[1]);
  const int k = std::atoi(argv[2]);
  const int reps = std::atoi(flag_value(argc, argv, "--reps", "3"));
  const unsigned threads = static_cast<unsigned>(
      std::atoi(flag_value(argc, argv, "--threads", "4")));
  const std::string strategy = flag_value(argc, argv, "--strategy", "auto");
  const std::string out =
      flag_value(argc, argv, "--out", "autogemm_trace.json");
  const char* metrics_out = flag_value(argc, argv, "--metrics", nullptr);

  ContextOptions opts;
  opts.threads = threads;
  opts.trace = true;
  if (strategy == "blocks") opts.parallel_strategy = ParallelStrategy::kBlocksOnly;
  else if (strategy == "ksplit") opts.parallel_strategy = ParallelStrategy::kKSplit;
  else if (strategy != "auto")
    throw std::invalid_argument("unknown strategy: " + strategy);
  Context ctx(opts);

  common::Matrix a(m, k), b(k, n), c(m, n);
  common::fill_random(a.view(), 1);
  common::fill_random(b.view(), 2);

  obs::Tracer::instance().clear();  // trace only the calls below
  for (int i = 0; i < reps; ++i) {
    const Status s = ctx.run(a.view(), b.view(), c.view());
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.to_string().c_str());
      return 1;
    }
  }

  obs::Tracer& tracer = obs::Tracer::instance();
  if (!tracer.write_chrome_json(out)) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("%dx%dx%d, %d rep(s), %u thread(s), strategy %s "
              "(executed as %s)\n",
              m, n, k, reps, threads, strategy.c_str(),
              ctx.health().last_parallel_strategy.c_str());
  std::printf("trace: %zu spans across %zu lanes -> %s\n",
              tracer.span_count(), tracer.active_lane_count(), out.c_str());
  if (metrics_out != nullptr) {
    const std::string text = obs::default_registry().prometheus_text();
    if (std::FILE* f = std::fopen(metrics_out, "w")) {
      std::fwrite(text.data(), 1, text.size(), f);
      std::fclose(f);
      std::printf("metrics: %s\n", metrics_out);
    } else {
      std::fprintf(stderr, "cannot write %s\n", metrics_out);
      return 1;
    }
  }
  return 0;
}

// Replays a shape trace against the serve engine and prints request
// accounting in a grep-friendly form (tools/ci.sh asserts on the
// `overload_events=` / `accounting=` line). Trace lines are
// `M N K [count] [lane] [dtype]`; `#` starts a comment; lane is
// `interactive` or `bulk` (default); dtype is any spelling
// common::parse_dtype accepts (default f32 — `int8` routes the request
// through the engine's quantized bucket, which never co-batches with
// the same shape's fp32 traffic). Requests of one shape share their A
// and B operands, so same-shape groups exercise run_batched's
// shared-operand packing (and the int8 tier's cached QPackedB) exactly
// as a production stream of one model's layer would. --verify checks
// fp32 results elementwise against the reference GEMM and int8 results
// against the quant tier's relative-Frobenius contract (1e-2).
int cmd_serve_replay(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::string path = argv[0];
  const std::size_t capacity = static_cast<std::size_t>(
      std::atol(flag_value(argc, argv, "--capacity", "1024")));
  const std::size_t max_batch = static_cast<std::size_t>(
      std::atol(flag_value(argc, argv, "--max-batch", "32")));
  const long window_us = std::atol(flag_value(argc, argv, "--window-us", "200"));
  const long deadline_us =
      std::atol(flag_value(argc, argv, "--deadline-us", "0"));
  const unsigned threads = static_cast<unsigned>(
      std::atoi(flag_value(argc, argv, "--threads", "1")));
  const int repeat = std::atoi(flag_value(argc, argv, "--repeat", "1"));
  const bool verify = has_flag(argc, argv, "--verify");
  const long drain_timeout_us =
      std::atol(flag_value(argc, argv, "--drain-timeout-us", "0"));
  const bool tune_enabled = has_flag(argc, argv, "--tune");
  const std::string records_file = flag_value(argc, argv, "--records", "");
  const int shards =
      std::max(1, std::atoi(flag_value(argc, argv, "--shards", "1")));

  struct Line {
    int m, n, k, count;
    serve::Lane lane;
    common::DType dtype;
  };
  std::vector<Line> lines;
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read trace: %s\n", path.c_str());
    return 1;
  }
  std::string raw;
  while (std::getline(in, raw)) {
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    std::istringstream ls(raw);
    Line line{0, 0, 0, 1, serve::Lane::kBulk, common::DType::kF32};
    if (!(ls >> line.m >> line.n >> line.k)) continue;  // blank/comment
    std::string tok;
    while (ls >> tok) {
      if (tok == "interactive") line.lane = serve::Lane::kInteractive;
      else if (tok == "bulk") line.lane = serve::Lane::kBulk;
      else if (common::parse_dtype(tok, &line.dtype)) continue;
      else line.count = std::atoi(tok.c_str());
    }
    if (line.m < 0 || line.n < 0 || line.k < 0 || line.count < 1) {
      std::fprintf(stderr, "bad trace line: %s\n", raw.c_str());
      return 1;
    }
    lines.push_back(line);
  }
  if (lines.empty()) {
    std::fprintf(stderr, "empty trace: %s\n", path.c_str());
    return 1;
  }

  // One shared A/B per distinct shape; every request gets its own C.
  struct Operands {
    common::Matrix a, b, c_ref;
    Operands(int m, int n, int k) : a(m, k), b(k, n), c_ref(m, n) {}
  };
  std::vector<std::unique_ptr<Operands>> shapes;
  const auto shape_for = [&](int m, int n, int k) -> Operands& {
    for (auto& s : shapes)
      if (s->a.rows() == m && s->b.cols() == n && s->a.cols() == k) return *s;
    shapes.push_back(std::make_unique<Operands>(m, n, k));
    Operands& s = *shapes.back();
    common::fill_random(s.a.view(), static_cast<unsigned>(shapes.size()));
    common::fill_random(s.b.view(), static_cast<unsigned>(shapes.size()) + 100);
    if (verify) common::reference_gemm(s.a.view(), s.b.view(), s.c_ref.view());
    return s;
  };

  ContextOptions copts;
  copts.threads = threads;
  // A prior run's persisted promotions feed this run's context: shapes
  // tuned last time resolve through the exact rung from request one.
  bool records_loaded = false;
  if (!records_file.empty() && std::ifstream(records_file).good()) {
    copts.records_path = records_file;
    records_loaded = true;
  }
  serve::EngineOptions eopts;
  eopts.queue_capacity = capacity;
  eopts.max_batch = max_batch;
  eopts.max_batch_delay_ns = static_cast<std::uint64_t>(window_us) * 1000;
  tune::OnlineTunerOptions topts;
  if (tune_enabled) {
    // Deterministic for CI: promotion decided by the analytic model, not
    // host wall-clock — the same trace promotes the same configs
    // everywhere. The tuner thread stays parked; a manual cycle below
    // runs after the replay was submitted (publication races live
    // traffic, which is the point).
    topts.start_paused = true;
    topts.min_requests = 2;
    topts.top_k = 8;
    topts.records_path = records_file;
    topts.cost_override = [](const tune::Candidate& c, int m, int n, int k) {
      return tune::model_cost_seconds(c, m, n, k);
    };
  }
  // --shards 1 (the default) drives a bare Engine; --shards N > 1 drives
  // a ShardedEngine (shape-affine routing + stealing), where --tune means
  // the router-owned fleet-wide tuner, never a per-worker one.
  std::unique_ptr<Context> ctx;
  std::unique_ptr<serve::Engine> engine;
  std::unique_ptr<serve::ShardedEngine> fleet;
  if (shards > 1) {
    serve::ShardedEngineOptions sopts;
    sopts.shards = static_cast<std::size_t>(shards);
    sopts.context = copts;
    sopts.worker = eopts;
    sopts.enable_online_tuner = tune_enabled;
    sopts.tuner = topts;
    auto made = serve::ShardedEngine::create(sopts);
    if (!made.ok()) {
      std::fprintf(stderr, "cannot build sharded engine: %s\n",
                   made.status().to_string().c_str());
      return 1;
    }
    fleet = std::move(made).value();
  } else {
    if (tune_enabled) {
      eopts.enable_online_tuner = true;
      eopts.tuner = topts;
    }
    ctx = std::make_unique<Context>(copts);
    engine = std::make_unique<serve::Engine>(*ctx, eopts);
  }

  struct Submitted {
    std::future<Status> future;
    common::Matrix c;
    Operands* operands;
    common::DType dtype;
    Submitted(std::future<Status> f, int m, int n, Operands* o,
              common::DType d)
        : future(std::move(f)), c(m, n), operands(o), dtype(d) {}
  };
  std::vector<std::unique_ptr<Submitted>> requests;
  std::size_t interactive = 0, bulk = 0;
  for (int r = 0; r < repeat; ++r) {
    for (const Line& line : lines) {
      Operands& ops = shape_for(line.m, line.n, line.k);
      for (int i = 0; i < line.count; ++i) {
        requests.push_back(std::make_unique<Submitted>(
            std::future<Status>(), line.m, line.n, &ops, line.dtype));
        Submitted& req = *requests.back();
        serve::GemmRequest g;
        g.a = ops.a.view();
        g.b = ops.b.view();
        g.c = req.c.view();
        g.lane = line.lane;
        g.dtype = line.dtype;
        if (deadline_us > 0)
          g.deadline_ns = common::now_ns() +
                          static_cast<std::uint64_t>(deadline_us) * 1000;
        (line.lane == serve::Lane::kInteractive ? interactive : bulk) += 1;
        req.future =
            fleet != nullptr ? fleet->submit(g) : engine->submit(g);
      }
    }
  }
  // With tuning on, run one cycle now — while the replay's futures are
  // still in flight, so promotion demonstrably does not block traffic.
  tune::OnlineTunerStats tuner_stats;
  tune::OnlineTuner* tuner =
      fleet != nullptr ? fleet->online_tuner() : engine->online_tuner();
  if (tune_enabled && tuner != nullptr) {
    tuner->run_cycle();
    tuner_stats = tuner->stats();
  }

  // Graceful lifecycle: a bounded drain first (rejecting new work while
  // finishing the admitted backlog), then shutdown() to guarantee Stopped
  // even if the bound expired.
  std::size_t drain_timeouts = 0;
  if (drain_timeout_us > 0) {
    const std::uint64_t bound =
        static_cast<std::uint64_t>(drain_timeout_us) * 1000;
    const Status drained =
        fleet != nullptr ? fleet->drain(bound) : engine->drain(bound);
    if (!drained.ok()) {
      ++drain_timeouts;
      std::printf("drain: timeout after %ldus (%s); finishing via shutdown\n",
                  drain_timeout_us, drained.to_string().c_str());
    }
  }
  if (fleet != nullptr) fleet->shutdown();
  else engine->shutdown();

  std::size_t unready = 0, ok = 0, failed = 0, rejected = 0, shed = 0,
              expired = 0, invalid = 0, mismatches = 0;
  for (auto& req : requests) {
    if (req->future.wait_for(std::chrono::seconds(30)) !=
        std::future_status::ready) {
      ++unready;  // a drained engine must have completed every future
      continue;
    }
    const Status s = req->future.get();
    switch (s.code()) {
      case StatusCode::kOk:
        ++ok;
        if (verify) {
          // int8 results are judged by the quant tier's norm contract;
          // exact elementwise bounds don't apply to quantized output.
          const bool bad =
              req->dtype == common::DType::kI8
                  ? common::rel_frobenius_error(req->c.view(),
                                                req->operands->c_ref.view()) >
                        1e-2
                  : common::max_rel_error(req->c.view(),
                                          req->operands->c_ref.view()) > 1e-3f;
          if (bad) ++mismatches;
        }
        break;
      case StatusCode::kResourceExhausted: ++rejected; break;
      case StatusCode::kUnavailable: ++shed; break;
      case StatusCode::kDeadlineExceeded: ++expired; break;
      case StatusCode::kInvalidArgument: ++invalid; break;
      default: ++failed; break;
    }
  }

  serve::ShardedStats fleet_stats;
  serve::ServerStats st;
  if (fleet != nullptr) {
    fleet_stats = fleet->stats();
    st = fleet_stats.aggregate;
  } else {
    st = engine->stats();
  }
  const auto q_us = [](const char* name) {
    const auto snap = obs::default_registry().histogram(name).snapshot();
    return std::make_pair(snap.quantile(0.5) * 1e6, snap.quantile(0.99) * 1e6);
  };
  const auto [p50_i, p99_i] =
      q_us("autogemm_serve_queue_seconds{lane=\"interactive\"}");
  const auto [p50_b, p99_b] = q_us("autogemm_serve_queue_seconds{lane=\"bulk\"}");

  std::printf("serve-replay: trace=%s requests=%zu capacity=%zu max_batch=%zu "
              "window_us=%ld repeat=%d\n",
              path.c_str(), requests.size(), capacity, max_batch, window_us,
              repeat);
  std::printf("lanes: interactive=%zu bulk=%zu\n", interactive, bulk);
  std::printf("results: ok=%zu failed=%zu rejected=%zu shed=%zu expired=%zu "
              "invalid=%zu\n",
              ok, failed, rejected, shed, expired, invalid);
  std::printf("dispatch: batches=%llu batched_requests=%llu single=%llu "
              "max_queue_depth=%llu\n",
              static_cast<unsigned long long>(st.batches),
              static_cast<unsigned long long>(st.batched_requests),
              static_cast<unsigned long long>(st.single_dispatches),
              static_cast<unsigned long long>(st.max_queue_depth));
  if (fleet != nullptr)
    std::printf("shards: n=%zu steals=%llu routed=%llu inline=%zu\n",
                fleet->shards(),
                static_cast<unsigned long long>(fleet_stats.steals),
                static_cast<unsigned long long>(fleet_stats.routed),
                fleet->inline_shards());
  std::printf("queue_latency_us: interactive_p50=%.1f interactive_p99=%.1f "
              "bulk_p50=%.1f bulk_p99=%.1f\n",
              p50_i, p99_i, p50_b, p99_b);
  if (tune_enabled) {
    std::uint64_t resolved_exact = 0;
    if (fleet != nullptr) {
      for (std::size_t i = 0; i < fleet->shards(); ++i)
        resolved_exact += fleet->shard_context(i).stats().resolved_exact;
    } else {
      resolved_exact = ctx->stats().resolved_exact;
    }
    std::printf("tuning: searches=%llu promotions=%llu demotions=%llu "
                "records_loaded=%d resolved_exact=%llu persisted=%llu\n",
                static_cast<unsigned long long>(tuner_stats.searches),
                static_cast<unsigned long long>(tuner_stats.promotions),
                static_cast<unsigned long long>(tuner_stats.demotions),
                records_loaded ? 1 : 0,
                static_cast<unsigned long long>(resolved_exact),
                static_cast<unsigned long long>(tuner_stats.persisted));
  }
  const bool clean = st.accounting_clean() && unready == 0 &&
                     st.submitted == requests.size() &&
                     (fleet == nullptr || fleet_stats.accounting_clean());
  std::printf("overload_events=%llu accounting=%s\n",
              static_cast<unsigned long long>(st.rejected + st.shed),
              clean ? "clean" : "BROKEN");
  if (unready > 0) {
    std::fprintf(stderr, "error: %zu future(s) never completed\n", unready);
    return 3;
  }
  if (!clean) return 4;
  if (verify && mismatches > 0) {
    std::fprintf(stderr, "error: %zu OK result(s) diverge from reference\n",
                 mismatches);
    return 5;
  }
  return 0;
}

// Seeded chaos runs against the serve engine (serve/chaos.hpp). Each seed
// is one reproducible experiment; the run fails on any invariant
// violation. CI drives this with a fixed seed range under both release
// and ASan configs; a failing seed replays with `autogemm chaos --seed N`.
int cmd_chaos(int argc, char** argv) {
  const std::uint64_t seed0 = static_cast<std::uint64_t>(
      std::atoll(flag_value(argc, argv, "--seed", "1")));
  const int seeds = std::atoi(flag_value(argc, argv, "--seeds", "1"));
  serve::ChaosOptions copts;
  copts.submitters = std::atoi(flag_value(argc, argv, "--submitters", "3"));
  copts.requests_per_submitter =
      std::atoi(flag_value(argc, argv, "--requests", "60"));
  copts.shards = std::max(1, std::atoi(flag_value(argc, argv, "--shards", "1")));
  copts.verbose = true;
  std::size_t violations = 0;
  for (int i = 0; i < std::max(1, seeds); ++i) {
    copts.seed = seed0 + static_cast<std::uint64_t>(i);
    const serve::ChaosReport rep = serve::run_chaos(copts);
    violations += rep.violations.size();
    for (const std::string& v : rep.violations)
      std::fprintf(stderr, "violation [seed=%llu]: %s\n",
                   static_cast<unsigned long long>(rep.seed), v.c_str());
  }
  std::printf("chaos: seeds=%d violations=%zu\n", std::max(1, seeds),
              violations);
  return violations == 0 ? 0 : 7;
}

// Quantized crosscheck (`crosscheck --dtype int8`) on the same irregular
// tile sweep as the f32 leg. For each tile:
//   * reference_gemm computes the fp64-accumulated ground truth;
//   * the portable scalar quantized kernel must satisfy the int8 accuracy
//     contract (relative Frobenius error <= 1e-2, quant/qgemm.hpp);
//   * the widening SIMD path must satisfy it too AND agree with the
//     portable kernel bit-for-bit — integer accumulation is exact on
//     both, so any divergence is a kernel bug, not rounding.
// Exit 0 and a final `crosscheck: ... failures=0` line on success — the
// CI gate greps for it, same contract as the f32 leg.
int cmd_crosscheck_i8(int kc, const int (*tiles)[2], std::size_t n_tiles) {
  int failures = 0, checks = 0;
  for (std::size_t t = 0; t < n_tiles; ++t) {
    const int mr = tiles[t][0], nr = tiles[t][1];
    common::Matrix a(mr, kc), b(kc, nr);
    common::Matrix c_ref(mr, nr), c_port(mr, nr), c_simd(mr, nr);
    common::fill_random(a.view(), 7);
    common::fill_random(b.view(), 13);
    common::reference_gemm(a.view(), b.view(), c_ref.view());

    quant::QGemmOptions qo;
    qo.beta = 0.0f;
    qo.force_portable = true;
    const Status sp = quant::qgemm(a.view(), b.view(), c_port.view(), qo);
    qo.force_portable = false;
    const Status ss = quant::qgemm(a.view(), b.view(), c_simd.view(), qo);
    const double port_err =
        sp.ok() ? common::rel_frobenius_error(c_port.view(), c_ref.view())
                : -1.0;
    const double simd_err =
        ss.ok() ? common::rel_frobenius_error(c_simd.view(), c_ref.view())
                : -1.0;
    bool identical = sp.ok() && ss.ok();
    for (int r = 0; identical && r < mr; ++r)
      for (int c = 0; c < nr; ++c)
        if (c_port.at(r, c) != c_simd.at(r, c)) {
          identical = false;
          break;
        }
    checks += 3;
    const bool ok = sp.ok() && ss.ok() && port_err <= 1e-2 &&
                    simd_err <= 1e-2 && identical;
    if (!ok) ++failures;
    std::printf("crosscheck i8 %dx%dx%d portable_err=%g simd_err=%g "
                "bit_identical=%s %s\n",
                mr, nr, kc, port_err, simd_err, identical ? "yes" : "NO",
                ok ? "OK" : "FAIL");
  }
  std::printf("crosscheck: dtype=i8 tiles=%zu checks=%d failures=%d\n",
              n_tiles, checks, failures);
  return failures == 0 ? 0 : 6;
}

// Three-way crosscheck on a sweep of irregular micro-tiles — the shapes
// the paper's predicated SVE tier exists for (column counts that are not
// a multiple of any vector length). For each tile:
//   * reference_gemm computes the ground truth;
//   * the NEON host path (kernels::run_tile — compiled vec4 main loop plus
//     scalar edge columns) must match it;
//   * the SVE backend's generated VL-agnostic kernel, executed by the
//     functional interpreter at every VL from its generation width up to
//     the A64FX's 16 lanes, must match it at each VL.
// Exit 0 and a final `crosscheck: ... failures=0` line on success — this
// is the CI gate tools/ci.sh greps for. `--dtype int8` swaps in the
// quantized-tier leg above over the same tiles.
int cmd_crosscheck(int argc, char** argv) {
  const int kc = std::atoi(flag_value(argc, argv, "--kc", "17"));
  static const int tiles_i8[][2] = {
      {5, 10}, {3, 7}, {6, 18}, {7, 22}, {2, 30}, {4, 13}, {8, 6}, {1, 27},
  };
  const std::string dtype_flag = flag_value(argc, argv, "--dtype", "f32");
  common::DType dtype = common::DType::kF32;
  if (!common::parse_dtype(dtype_flag, &dtype) ||
      dtype == common::DType::kBf16) {
    std::fprintf(stderr, "crosscheck: unsupported --dtype %s (f32|int8)\n",
                 dtype_flag.c_str());
    return 2;
  }
  if (dtype == common::DType::kI8)
    return cmd_crosscheck_i8(kc, tiles_i8,
                             sizeof(tiles_i8) / sizeof(tiles_i8[0]));
  const struct { int mr, nr; } tiles[] = {
      {5, 10}, {3, 7}, {6, 18}, {7, 22}, {2, 30}, {4, 13}, {8, 6}, {1, 27},
  };
  const backend::KernelBackend& sve =
      backend::get_backend(backend::BackendId::kSveSim);
  const int vl_max = sve.caps().vl_default;
  int failures = 0, checks = 0;
  for (const auto& t : tiles) {
    const int mr = t.mr, nr = t.nr;
    std::vector<float> a(static_cast<std::size_t>(mr) * kc);
    std::vector<float> b(static_cast<std::size_t>(kc) * nr);
    std::vector<float> c_ref(static_cast<std::size_t>(mr) * nr, 0.0f);
    common::fill_random(common::MatrixView{a.data(), mr, kc, kc}, 7);
    common::fill_random(common::MatrixView{b.data(), kc, nr, nr}, 13);
    common::reference_gemm(common::ConstMatrixView{a.data(), mr, kc, kc},
                           common::ConstMatrixView{b.data(), kc, nr, nr},
                           common::MatrixView{c_ref.data(), mr, nr, nr});
    const float tol = 1e-4f * static_cast<float>(kc);
    const auto max_err = [&](const std::vector<float>& c) {
      float e = 0.0f;
      for (std::size_t i = 0; i < c.size(); ++i)
        e = std::max(e, std::fabs(c[i] - c_ref[i]));
      return e;
    };

    // NEON host path: the portable tile dispatcher every backend falls
    // back to on this machine.
    std::vector<float> c_neon(c_ref.size(), 0.0f);
    kernels::run_tile(mr, nr, a.data(), kc, b.data(), nr, c_neon.data(), nr,
                      kc);
    const float neon_err = max_err(c_neon);
    bool ok = neon_err <= tol;
    ++checks;

    // Simulated SVE: one generated program, executed at every legal VL.
    std::string sve_report;
    try {
      const codegen::MicroKernel mk = sve.generate(mr, nr, kc, {});
      for (int vl = mk.program.lanes(); vl <= vl_max; vl *= 2) {
        std::vector<float> c_sve(c_ref.size(), 0.0f);
        sim::Interpreter interp(/*max_steps=*/4'000'000);
        interp.set_vector_length(vl);
        sim::KernelArgs args;
        args.a = a.data();
        args.b = b.data();
        args.c = c_sve.data();
        args.lda = kc;
        args.ldb = nr;
        args.ldc = nr;
        const Status s = interp.try_run(mk.program, args);
        const float err = s.ok() ? max_err(c_sve) : -1.0f;
        ++checks;
        if (!s.ok() || err > tol) ok = false;
        sve_report += " sve_vl" + std::to_string(vl) + "_err=" +
                      (s.ok() ? std::to_string(err) : s.to_string());
      }
    } catch (const std::exception& e) {
      ok = false;
      sve_report = std::string(" sve_error=") + e.what();
    }
    if (!ok) ++failures;
    std::printf("crosscheck %dx%dx%d neon_err=%g%s %s\n", mr, nr, kc,
                neon_err, sve_report.c_str(), ok ? "OK" : "FAIL");
  }
  std::printf("crosscheck: tiles=%zu checks=%d failures=%d\n",
              sizeof(tiles) / sizeof(tiles[0]), checks, failures);
  return failures == 0 ? 0 : 6;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "chips") return cmd_chips();
    if (cmd == "asm") return cmd_asm(argc - 2, argv + 2);
    if (cmd == "tiles") return cmd_tiles(argc - 2, argv + 2);
    if (cmd == "price") return cmd_price(argc - 2, argv + 2);
    if (cmd == "run") return cmd_run(argc - 2, argv + 2);
    if (cmd == "tune") return cmd_tune(argc - 2, argv + 2);
    if (cmd == "trace") return cmd_trace(argc - 2, argv + 2);
    if (cmd == "serve-replay") return cmd_serve_replay(argc - 2, argv + 2);
    if (cmd == "chaos") return cmd_chaos(argc - 2, argv + 2);
    if (cmd == "crosscheck") return cmd_crosscheck(argc - 2, argv + 2);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
