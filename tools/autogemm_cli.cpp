// autogemm command-line tool.
//
//   autogemm chips                          list chip models
//   autogemm asm MR NR KC [--rotate] [--lanes L]
//                                           print a generated kernel
//   autogemm tiles MC NC KC [--chip NAME]   show the DMT tiling
//   autogemm price M N K [--chip NAME] [--threads T]
//                                           price every library on a chip
//   autogemm run M N K [--reps R]           execute on this host, verified
//   autogemm tune M N K [--out FILE]        model-pruned parameter search
//   autogemm trace M N K [--threads T] [--reps R] [--strategy S]
//                        [--out FILE] [--metrics FILE]
//                                           traced GEMM -> Chrome trace
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "baselines/library_zoo.hpp"
#include "baselines/pricer.hpp"
#include "codegen/generator.hpp"
#include "common/reference_gemm.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/context.hpp"
#include "core/gemm.hpp"
#include "hw/chip_database.hpp"
#include "isa/asm_printer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tiling/micro_tiling.hpp"
#include "tune/records.hpp"
#include "tune/tuner.hpp"

namespace {

using namespace autogemm;

int usage() {
  std::fprintf(
      stderr,
      "usage: autogemm <command> [args]\n"
      "  chips                                   list chip models\n"
      "  asm MR NR KC [--rotate] [--lanes L]     print generated kernel\n"
      "  tiles MC NC KC [--chip NAME]            show DMT tiling\n"
      "  price M N K [--chip NAME] [--threads T] price all libraries\n"
      "  run M N K [--reps R]                    execute + verify on host\n"
      "  tune M N K [--out FILE]                 model-pruned tuning\n"
      "  trace M N K [--threads T] [--reps R] [--strategy auto|blocks|ksplit]\n"
      "              [--out FILE] [--metrics FILE]\n"
      "                                          traced GEMM -> Chrome trace\n"
      "                                          (open in chrome://tracing;\n"
      "                                          tools/trace_report.py makes\n"
      "                                          the phase table)\n");
  return 2;
}

const char* flag_value(int argc, char** argv, const char* name,
                       const char* fallback) {
  for (int i = 0; i < argc - 1; ++i)
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  return fallback;
}

bool has_flag(int argc, char** argv, const char* name) {
  for (int i = 0; i < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return true;
  return false;
}

hw::Chip chip_by_name(const std::string& name) {
  for (const auto chip :
       {hw::Chip::kReference, hw::Chip::kKP920, hw::Chip::kGraviton2,
        hw::Chip::kAltra, hw::Chip::kM2, hw::Chip::kA64FX,
        hw::Chip::kGraviton3}) {
    if (name == hw::chip_name(chip)) return chip;
  }
  throw std::invalid_argument("unknown chip: " + name +
                              " (try `autogemm chips`)");
}

int cmd_chips() {
  std::printf("%-11s %6s %6s %6s %9s %12s %10s\n", "name", "cores", "GHz",
              "lanes", "sigma_AI", "peak GF/core", "DRAM GB/s");
  for (const auto chip :
       {hw::Chip::kReference, hw::Chip::kKP920, hw::Chip::kGraviton2,
        hw::Chip::kAltra, hw::Chip::kM2, hw::Chip::kA64FX,
        hw::Chip::kGraviton3}) {
    const auto h = hw::chip_model(chip);
    std::printf("%-11s %6d %6.2f %6d %9.1f %12.1f %10.0f\n", h.name.c_str(),
                h.topology.cores, h.freq_ghz, h.lanes, h.sigma_ai,
                h.peak_gflops_core(), h.dram_bw_gbs);
  }
  return 0;
}

int cmd_asm(int argc, char** argv) {
  if (argc < 3) return usage();
  const int mr = std::atoi(argv[0]);
  const int nr = std::atoi(argv[1]);
  const int kc = std::atoi(argv[2]);
  codegen::GeneratorOptions opts;
  opts.rotate_registers = has_flag(argc, argv, "--rotate");
  const int lanes = std::atoi(flag_value(argc, argv, "--lanes", "4"));
  const auto mk = codegen::generate_microkernel(mr, nr, kc, lanes, opts);
  std::printf("%s", isa::emit_cpp_wrapper(mk.program).c_str());
  return 0;
}

int cmd_tiles(int argc, char** argv) {
  if (argc < 3) return usage();
  const int mc = std::atoi(argv[0]);
  const int nc = std::atoi(argv[1]);
  const int kc = std::atoi(argv[2]);
  const auto chip = chip_by_name(flag_value(argc, argv, "--chip", "KP920"));
  const auto h = hw::chip_model(chip);
  const auto r = tiling::tile_dmt(mc, nc, kc, h);
  std::printf("DMT on %s for C(%d,%d), kc=%d: %zu tiles, %d padded, %d "
              "low-AI, %.0f projected cycles\n",
              h.name.c_str(), mc, nc, kc, r.tiles.size(), r.padded_tiles,
              r.low_ai_tiles, r.projected_cycles);
  std::printf("split: n_front=%d m_front_up=%d m_back_up=%d\n", r.n_front,
              r.m_front_up, r.m_back_up);
  for (const auto& t : r.tiles)
    std::printf("  (%3d,%3d) %dx%d%s\n", t.row, t.col, t.mr, t.nr,
                t.padded() ? " [clipped]" : "");
  return 0;
}

int cmd_price(int argc, char** argv) {
  if (argc < 3) return usage();
  const long m = std::atol(argv[0]);
  const long n = std::atol(argv[1]);
  const long k = std::atol(argv[2]);
  const auto chip = chip_by_name(flag_value(argc, argv, "--chip", "KP920"));
  const auto h = hw::chip_model(chip);
  baselines::PriceOptions popts;
  popts.threads = std::atoi(flag_value(argc, argv, "--threads", "1"));
  std::printf("%ldx%ldx%ld on %s, %d thread(s):\n", m, n, k, h.name.c_str(),
              popts.threads);
  std::printf("%-11s %12s %10s %12s\n", "library", "cycles", "GFLOPS",
              "efficiency");
  for (const auto lib : baselines::table_one_libraries()) {
    if (!baselines::supports_shape(lib, m, n, k)) {
      std::printf("%-11s %12s\n", baselines::library_name(lib), "N/A");
      continue;
    }
    const auto p = baselines::price_gemm(lib, m, n, k, h, popts);
    std::printf("%-11s %12.0f %10.1f %11.1f%%\n", baselines::library_name(lib),
                p.cycles, p.gflops, p.efficiency * 100);
  }
  return 0;
}

int cmd_run(int argc, char** argv) {
  if (argc < 3) return usage();
  const int m = std::atoi(argv[0]);
  const int n = std::atoi(argv[1]);
  const int k = std::atoi(argv[2]);
  const int reps = std::atoi(flag_value(argc, argv, "--reps", "10"));
  common::Matrix a(m, k), b(k, n), c(m, n), c_ref(m, n);
  common::fill_random(a.view(), 1);
  common::fill_random(b.view(), 2);
  common::reference_gemm(a.view(), b.view(), c_ref.view());
  Plan plan(m, n, k, default_config(m, n, k));
  gemm(a.view(), b.view(), c.view(), plan);
  std::printf("max relative error: %.2e\n",
              common::max_rel_error(c.view(), c_ref.view()));
  common::Timer t;
  for (int i = 0; i < reps; ++i) gemm(a.view(), b.view(), c.view(), plan);
  const double seconds = t.seconds() / reps;
  std::printf("%.3f ms/call, %.2f GFLOPS (plan mc=%d nc=%d kc=%d)\n",
              seconds * 1e3, common::gemm_flops(m, n, k) / seconds / 1e9,
              plan.config().mc, plan.config().nc, plan.config().kc);
  return 0;
}

int cmd_tune(int argc, char** argv) {
  if (argc < 3) return usage();
  const int m = std::atoi(argv[0]);
  const int n = std::atoi(argv[1]);
  const int k = std::atoi(argv[2]);
  const char* out = flag_value(argc, argv, "--out", nullptr);
  const auto h = hw::chip_model(hw::Chip::kGraviton2);
  const auto space = tune::enumerate_space(m, n, k, /*divisors_only=*/false);
  const auto model = [&](const tune::Candidate& c) {
    return tune::model_cost(c, m, n, k, h);
  };
  const auto result = tune::tune_model_pruned(space, model, model, 0.02, 16);
  std::printf("space %zu candidates, %ld evaluated, best %.0f model cycles\n",
              space.size(), result.evaluations, result.best_cost);
  std::printf("best: mc=%d nc=%d kc=%d order=%s packing=%d\n", result.best.mc,
              result.best.nc, result.best.kc,
              loop_order_name(result.best.loop_order),
              static_cast<int>(result.best.packing));
  if (out != nullptr) {
    tune::TuningRecords records;
    if (!records.load_file(out)) { /* start fresh */ }
    records.add({m, n, k}, result.best, result.best_cost);
    if (!records.save_file(out)) {
      std::fprintf(stderr, "cannot write %s\n", out);
      return 1;
    }
    std::printf("recorded into %s (%zu records)\n", out, records.size());
  }
  return 0;
}

int cmd_trace(int argc, char** argv) {
  if (argc < 3) return usage();
  const int m = std::atoi(argv[0]);
  const int n = std::atoi(argv[1]);
  const int k = std::atoi(argv[2]);
  const int reps = std::atoi(flag_value(argc, argv, "--reps", "3"));
  const unsigned threads = static_cast<unsigned>(
      std::atoi(flag_value(argc, argv, "--threads", "4")));
  const std::string strategy = flag_value(argc, argv, "--strategy", "auto");
  const std::string out =
      flag_value(argc, argv, "--out", "autogemm_trace.json");
  const char* metrics_out = flag_value(argc, argv, "--metrics", nullptr);

  ContextOptions opts;
  opts.threads = threads;
  opts.trace = true;
  if (strategy == "blocks") opts.parallel_strategy = ParallelStrategy::kBlocksOnly;
  else if (strategy == "ksplit") opts.parallel_strategy = ParallelStrategy::kKSplit;
  else if (strategy != "auto")
    throw std::invalid_argument("unknown strategy: " + strategy);
  Context ctx(opts);

  common::Matrix a(m, k), b(k, n), c(m, n);
  common::fill_random(a.view(), 1);
  common::fill_random(b.view(), 2);

  obs::Tracer::instance().clear();  // trace only the calls below
  for (int i = 0; i < reps; ++i) {
    const Status s = ctx.run(a.view(), b.view(), c.view());
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.to_string().c_str());
      return 1;
    }
  }

  obs::Tracer& tracer = obs::Tracer::instance();
  if (!tracer.write_chrome_json(out)) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("%dx%dx%d, %d rep(s), %u thread(s), strategy %s "
              "(executed as %s)\n",
              m, n, k, reps, threads, strategy.c_str(),
              ctx.health().last_parallel_strategy.c_str());
  std::printf("trace: %zu spans across %zu lanes -> %s\n",
              tracer.span_count(), tracer.active_lane_count(), out.c_str());
  if (metrics_out != nullptr) {
    const std::string text = obs::default_registry().prometheus_text();
    if (std::FILE* f = std::fopen(metrics_out, "w")) {
      std::fwrite(text.data(), 1, text.size(), f);
      std::fclose(f);
      std::printf("metrics: %s\n", metrics_out);
    } else {
      std::fprintf(stderr, "cannot write %s\n", metrics_out);
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "chips") return cmd_chips();
    if (cmd == "asm") return cmd_asm(argc - 2, argv + 2);
    if (cmd == "tiles") return cmd_tiles(argc - 2, argv + 2);
    if (cmd == "price") return cmd_price(argc - 2, argv + 2);
    if (cmd == "run") return cmd_run(argc - 2, argv + 2);
    if (cmd == "tune") return cmd_tune(argc - 2, argv + 2);
    if (cmd == "trace") return cmd_trace(argc - 2, argv + 2);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
